"""Unit tests for the cycle-level simulation engine."""

import pytest

from repro.core.errors import DeadlockError, SimulationError
from repro.simulation import TICK, Engine, SimEvent, WaitCycles


def test_empty_engine_completes_immediately():
    eng = Engine()
    result = eng.run()
    assert result.completed
    assert result.cycles == 0


def test_tick_advances_one_cycle_each():
    eng = Engine()
    seen = []

    def proc():
        for _ in range(5):
            seen.append(eng.cycle)
            yield TICK

    eng.spawn(proc, "ticker")
    result = eng.run()
    assert result.completed
    assert seen == [0, 1, 2, 3, 4]


def test_wait_cycles_skips_time():
    eng = Engine()
    marks = []

    def proc():
        yield WaitCycles(1000)
        marks.append(eng.cycle)
        yield WaitCycles(234)
        marks.append(eng.cycle)

    eng.spawn(proc, "sleeper")
    eng.run()
    assert marks == [1000, 1234]


def test_wait_cycles_rejects_zero():
    with pytest.raises(ValueError):
        WaitCycles(0)


def test_process_return_value_captured():
    eng = Engine()

    def proc():
        yield TICK
        return 42

    p = eng.spawn(proc, "answer")
    eng.run()
    assert p.finished
    assert p.result == 42


def test_deterministic_ordering_same_cycle():
    # Processes scheduled in the same cycle run in spawn order.
    eng = Engine()
    order = []

    def make(tag):
        def proc():
            for _ in range(3):
                order.append((eng.cycle, tag))
                yield TICK

        return proc

    eng.spawn(make("a"), "a")
    eng.spawn(make("b"), "b")
    eng.run()
    assert order == [
        (0, "a"), (0, "b"), (1, "a"), (1, "b"), (2, "a"), (2, "b"),
    ]


def test_two_runs_are_identical():
    def build():
        eng = Engine()
        trace = []

        def producer(fifo):
            yield from fifo.push_many(range(20))

        def consumer(fifo):
            for _ in range(20):
                item = yield from fifo.pop()
                trace.append((eng.cycle, item))

        f = eng.fifo("f", capacity=3)
        eng.spawn(producer(f), "p")
        eng.spawn(consumer(f), "c")
        eng.run()
        return trace

    assert build() == build()


def test_daemon_does_not_keep_engine_alive():
    eng = Engine()
    steps = []

    def daemon():
        while True:
            steps.append(eng.cycle)
            yield TICK

    def worker():
        yield WaitCycles(3)

    eng.spawn(daemon, "d", daemon=True)
    eng.spawn(worker, "w")
    result = eng.run()
    assert result.completed
    assert result.cycles == 3


def test_event_wakes_waiters():
    eng = Engine()
    ev = SimEvent("go")
    woke_at = []

    def waiter():
        yield ev
        woke_at.append(eng.cycle)

    def setter():
        yield WaitCycles(7)
        eng.set_event(ev)

    eng.spawn(waiter, "waiter")
    eng.spawn(setter, "setter")
    eng.run()
    assert woke_at == [7]
    assert ev.is_set and ev.set_at_cycle == 7


def test_waiting_on_already_set_event_continues():
    eng = Engine()
    ev = SimEvent("pre")
    done = []

    def setter():
        eng.set_event(ev)
        yield TICK

    def waiter():
        yield WaitCycles(5)
        yield ev  # already set: no extra blocking beyond this step
        done.append(eng.cycle)

    eng.spawn(setter, "s")
    eng.spawn(waiter, "w")
    eng.run()
    assert done == [5]


def test_wait_any_of_two_fifos():
    eng = Engine()
    f1 = eng.fifo("f1", capacity=4)
    f2 = eng.fifo("f2", capacity=4)
    got = []

    def selector():
        # Wait until either input has data, then report which.
        yield (f1.can_pop, f2.can_pop)
        if f2.readable:
            got.append(("f2", f2.take(), eng.cycle))
        if f1.readable:
            got.append(("f1", f1.take(), eng.cycle))

    def producer():
        yield WaitCycles(10)
        yield from f2.push("x")

    eng.spawn(selector, "sel")
    eng.spawn(producer, "prod")
    eng.run()
    # Item staged at cycle 10 becomes visible at 11.
    assert got == [("f2", "x", 11)]


def test_deadlock_detected_and_reported():
    eng = Engine()
    f = eng.fifo("stuck", capacity=1)

    def starved():
        item = yield from f.pop()  # nobody ever pushes
        return item

    eng.spawn(starved, "starved-consumer")
    with pytest.raises(DeadlockError, match="starved-consumer"):
        eng.run()


def test_cyclic_dependency_deadlock():
    # Two ranks both send before receiving with too-small buffers (§3.3).
    eng = Engine()
    a_to_b = eng.fifo("a2b", capacity=2)
    b_to_a = eng.fifo("b2a", capacity=2)

    def node(out_f, in_f, n):
        def proc():
            for i in range(n):
                yield from out_f.push(i)
            for _ in range(n):
                yield from in_f.pop()

        return proc

    eng.spawn(node(a_to_b, b_to_a, 10), "a")
    eng.spawn(node(b_to_a, a_to_b, 10), "b")
    with pytest.raises(DeadlockError):
        eng.run()


def test_max_cycles_stops_run():
    eng = Engine()

    def forever():
        while True:
            yield TICK

    eng.spawn(forever, "loop")
    result = eng.run(max_cycles=100)
    assert result.reason == "max_cycles"
    assert result.cycles == 100
    assert not result.completed


def test_combinational_loop_guard():
    eng = Engine()
    f = eng.fifo("f", capacity=4)

    def spinner():
        f.stage("x")
        while True:
            # Yielding an already-satisfied condition without consuming it
            # re-runs the process in the same cycle: must be caught.
            yield f.can_push

    eng.spawn(spinner, "spin")
    with pytest.raises(SimulationError, match="combinational loop"):
        eng.run()


def test_spawn_rejects_non_generator():
    eng = Engine()
    with pytest.raises(SimulationError, match="generator"):
        eng.spawn(lambda: 42, "notgen")


def test_exception_in_process_annotated():
    eng = Engine()

    def broken():
        yield TICK
        raise ValueError("boom")

    eng.spawn(broken, "broken-kernel")
    with pytest.raises(ValueError, match="boom") as exc_info:
        eng.run()
    assert any("broken-kernel" in note for note in exc_info.value.__notes__)


def test_done_event_of_process():
    eng = Engine()

    def worker():
        yield WaitCycles(9)
        return "done"

    waited = []
    p = eng.spawn(worker, "w")

    def observer():
        yield p.done
        waited.append(eng.cycle)

    eng.spawn(observer, "obs")
    eng.run()
    assert waited == [9]


def test_start_cycle_delays_first_step():
    eng = Engine()
    first = []

    def proc():
        first.append(eng.cycle)
        yield TICK

    eng.spawn(proc, "late", start_cycle=50)
    eng.run()
    assert first == [50]


def test_event_skipping_is_fast_for_long_idle():
    # A 10-million-cycle sleep must not iterate 10 million times.
    eng = Engine()

    def sleeper():
        yield WaitCycles(10_000_000)

    eng.spawn(sleeper, "s")
    result = eng.run()
    assert result.cycles == 10_000_000


def test_fifo_stats_snapshot():
    eng = Engine()
    f = eng.fifo("stats", capacity=4)

    def p():
        yield from f.push_many([1, 2, 3])

    def c():
        yield from f.pop_many(3)

    eng.spawn(p, "p")
    eng.spawn(c, "c")
    eng.run()
    stats = eng.fifo_stats()["stats"]
    assert stats["pushes"] == 3
    assert stats["pops"] == 3
    assert stats["capacity"] == 4
