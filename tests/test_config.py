"""Unit tests for the hardware configuration model."""

import pytest

from repro.core.config import (
    HW_PRESETS,
    NOCTUA,
    NOCTUA_DEEP,
    NOCTUA_KERNEL_CLOCKS,
    NOCTUA_MEMORY,
    NOCTUA_XDEEP,
    HardwareConfig,
    KernelClockModel,
    MemoryConfig,
    hardware_preset,
)
from repro.core.errors import ConfigurationError


def test_default_clock_gives_qsfp_line_rate():
    # One 32 B packet per cycle at 156.25 MHz == 40 Gbit/s (§5.1).
    assert NOCTUA.link_raw_bandwidth_bps == pytest.approx(40e9)


def test_payload_peak_matches_paper():
    # "35Gbit/s when taking the 4 B header of each network [packet] into
    # account" (§5.3.1).
    assert NOCTUA.link_payload_bandwidth_bps == pytest.approx(35e9)


def test_cycle_time_roundtrip():
    cycles = 12345
    assert NOCTUA.seconds_to_cycles(NOCTUA.cycles_to_seconds(cycles)) == cycles


def test_cycles_to_us():
    assert NOCTUA.cycles_to_us(NOCTUA.clock_hz) == pytest.approx(1e6)


def test_with_replaces_fields():
    cfg = NOCTUA.with_(read_burst=16)
    assert cfg.read_burst == 16
    assert cfg.clock_hz == NOCTUA.clock_hz
    assert NOCTUA.read_burst == 8  # original untouched


@pytest.mark.parametrize(
    "kwargs",
    [
        {"clock_hz": 0},
        {"clock_hz": -1},
        {"link_latency_cycles": -1},
        {"num_interfaces": 0},
        {"num_interfaces": 9},
        {"read_burst": 0},
        {"endpoint_fifo_depth": 0},
        {"inter_ck_fifo_depth": 0},
        {"reduce_credits": 0},
        {"max_ranks": 300},
        {"max_ports": 1000},
    ],
)
def test_invalid_config_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        HardwareConfig(**kwargs)


def test_deep_buffer_presets():
    """The deep presets differ from NOCTUA only in buffer depths: the
    timing calibration (clocks, latencies, polling) is shared, so deep
    points in BENCH_smoke.json stay comparable with the shallow ones."""
    for preset, depth in ((NOCTUA_DEEP, 32), (NOCTUA_XDEEP, 64)):
        assert preset.inter_ck_fifo_depth == depth
        assert preset.endpoint_fifo_depth == depth
        assert preset.clock_hz == NOCTUA.clock_hz
        assert preset.link_latency_cycles == NOCTUA.link_latency_cycles
        assert preset.read_burst == NOCTUA.read_burst
        assert preset.burst_mode and preset.pattern_replication
        assert preset.cruise_induction


def test_hardware_preset_lookup():
    assert hardware_preset("noctua") is NOCTUA
    assert hardware_preset("noctua-deep") is NOCTUA_DEEP
    assert hardware_preset("noctua-xdeep") is NOCTUA_XDEEP
    assert set(HW_PRESETS) == {"noctua", "noctua-deep", "noctua-xdeep"}
    with pytest.raises(ConfigurationError, match="unknown hardware preset"):
        hardware_preset("noctua-bottomless")


def test_cruise_induction_flag_round_trips():
    cfg = NOCTUA.with_(cruise_induction=False)
    assert not cfg.cruise_induction
    assert NOCTUA.cruise_induction  # default on


def test_memory_config_defaults():
    assert NOCTUA_MEMORY.num_banks == 4
    assert NOCTUA_MEMORY.bank_width_elements == 16


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_banks": 0},
        {"bank_width_elements": 0},
        {"gesummv_stream_bandwidth_Bps": 0},
    ],
)
def test_invalid_memory_config_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        MemoryConfig(**kwargs)


def test_kernel_clock_known_widths():
    assert NOCTUA_KERNEL_CLOCKS.fmax(16) == pytest.approx(132.0e6)
    assert NOCTUA_KERNEL_CLOCKS.fmax(64) == pytest.approx(116.5e6)


def test_kernel_clock_interpolation_and_clamping():
    model = NOCTUA_KERNEL_CLOCKS
    # Between the calibration points: strictly between the endpoint values.
    mid = model.fmax(40)
    assert 116.5e6 < mid < 132.0e6
    # Outside: clamped.
    assert model.fmax(1) == pytest.approx(132.0e6)
    assert model.fmax(512) == pytest.approx(116.5e6)


def test_kernel_clock_empty_model_uses_default():
    model = KernelClockModel(fmax_by_width_hz={}, default_fmax_hz=100e6)
    assert model.fmax(16) == pytest.approx(100e6)


def test_shard_transport_knobs_round_trip():
    cfg = NOCTUA.with_(shard_transport="shm", shard_ring_bytes=8192,
                       shard_inner_rounds=16)
    assert cfg.shard_transport == "shm"
    assert cfg.shard_ring_bytes == 8192
    assert cfg.shard_inner_rounds == 16
    assert NOCTUA.shard_transport == "auto"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"shard_transport": "tcp"},
        {"shard_ring_bytes": 64},
        {"shard_inner_rounds": 0},
    ],
)
def test_invalid_shard_transport_knobs_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        NOCTUA.with_(**kwargs)
