"""Unit tests for element<->packet packing (the Push/Pop internals)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.datatypes import SMI_DOUBLE, SMI_FLOAT, SMI_INT
from repro.core.errors import ChannelError
from repro.network.packet import OpType, Packet
from repro.simulation import Engine
from repro.transport.packing import PacketPacker, PacketUnpacker


def test_packer_emits_on_full_packet():
    p = PacketPacker(0, 1, 2, SMI_INT)
    for i in range(6):
        assert p.add(i) is None
    pkt = p.add(6)
    assert pkt is not None
    assert pkt.count == 7
    np.testing.assert_array_equal(pkt.elements(), np.arange(7, dtype=np.int32))
    assert p.pending == 0


def test_packer_flush_partial():
    p = PacketPacker(3, 4, 5, SMI_DOUBLE)  # 3 elements per packet
    p.add(1.5)
    pkt = p.flush()
    assert pkt.count == 1
    assert pkt.src == 3 and pkt.dst == 4 and pkt.port == 5
    assert p.flush() is None  # nothing left


def test_packer_header_fields():
    p = PacketPacker(7, 9, 11, SMI_FLOAT)
    for i in range(7):
        pkt = p.add(float(i)) or pkt if i else p.add  # noqa: F841 - see below
    # simpler: rebuild
    p = PacketPacker(7, 9, 11, SMI_FLOAT)
    out = None
    for i in range(7):
        out = p.add(float(i)) or out
    assert out.src == 7 and out.dst == 9 and out.port == 11
    assert out.op == OpType.DATA


def test_packer_retarget_on_boundary():
    p = PacketPacker(0, 1, 0, SMI_INT)
    p.retarget(5)
    out = None
    for i in range(7):
        out = p.add(i) or out
    assert out.dst == 5
    p.retarget(6)  # boundary again after emission
    p.add(0)
    with pytest.raises(ChannelError, match="partial packet"):
        p.retarget(7)


@settings(deadline=None, max_examples=30)
@given(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=100))
def test_pack_unpack_roundtrip_through_fifo(values):
    """Property: packer -> FIFO -> unpacker reproduces the element stream."""
    eng = Engine()
    fifo = eng.fifo("pkts", capacity=64)
    received = []

    def producer():
        packer = PacketPacker(0, 1, 0, SMI_INT)
        for v in values:
            pkt = packer.add(v)
            if pkt is not None:
                yield from fifo.push(pkt)
        tail = packer.flush()
        if tail is not None:
            yield from fifo.push(tail)

    def consumer():
        unpacker = PacketUnpacker(fifo, SMI_INT)
        for _ in range(len(values)):
            v = yield from unpacker.next_element()
            received.append(int(v))

    eng.spawn(producer, "p")
    eng.spawn(consumer, "c")
    eng.run()
    assert received == values


def test_unpacker_tracks_source_rank():
    eng = Engine()
    fifo = eng.fifo("pkts", capacity=8)
    sources = []

    def producer():
        for src in (3, 5):
            pkt = Packet(src=src, dst=1, port=0, op=OpType.DATA, count=1,
                         payload=np.array([src], np.int32), dtype=SMI_INT)
            yield from fifo.push(pkt)

    def consumer():
        unpacker = PacketUnpacker(fifo, SMI_INT)
        for _ in range(2):
            yield from unpacker.next_element()
            sources.append(unpacker.last_src)

    eng.spawn(producer, "p")
    eng.spawn(consumer, "c")
    eng.run()
    assert sources == [3, 5]


def test_unpacker_rejects_control_packet():
    eng = Engine()
    fifo = eng.fifo("pkts", capacity=8)

    def producer():
        yield from fifo.push(Packet(src=0, dst=1, port=0, op=OpType.CREDIT))

    def consumer():
        unpacker = PacketUnpacker(fifo, SMI_INT)
        yield from unpacker.next_element()

    eng.spawn(producer, "p")
    eng.spawn(consumer, "c")
    with pytest.raises(ChannelError, match="expected DATA"):
        eng.run()


def test_unpacker_one_element_per_cycle():
    eng = Engine()
    fifo = eng.fifo("pkts", capacity=8)
    times = []

    def producer():
        packer = PacketPacker(0, 1, 0, SMI_INT)
        for i in range(14):  # exactly two full packets
            pkt = packer.add(i)
            if pkt is not None:
                yield from fifo.push(pkt)

    def consumer():
        unpacker = PacketUnpacker(fifo, SMI_INT)
        for _ in range(14):
            yield from unpacker.next_element()
            times.append(eng.cycle)

    eng.spawn(producer, "p")
    eng.spawn(consumer, "c")
    eng.run()
    gaps = [b - a for a, b in zip(times, times[1:])]
    # Elements within a packet arrive back-to-back (gap 1).
    assert gaps.count(1) >= 10
