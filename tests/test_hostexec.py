"""Tests for the host-mediated (MPI+OpenCL) baseline model."""

import pytest

from repro.core.datatypes import SMI_FLOAT
from repro.hostexec import NOCTUA_HOST, HostPathModel, Segment


def test_latency_matches_table3():
    # Table 3: MPI+OpenCL one-way latency = 36.61 us.
    assert NOCTUA_HOST.p2p_latency_us() == pytest.approx(36.61, abs=0.01)


def test_effective_bandwidth_one_third_of_smi():
    # §5.3.1: "the host-based implementation achieves approximately one
    # third of the SMI bandwidth" (SMI ~32 Gbit/s => host ~11-13).
    peak = NOCTUA_HOST.peak_bandwidth_gbps()
    assert 10.0 < peak < 14.0


def test_bandwidth_monotone_in_size():
    sizes = [2**k for k in range(10, 28, 2)]
    bws = [NOCTUA_HOST.p2p_bandwidth_gbps(s) for s in sizes]
    assert bws == sorted(bws)
    # Converges towards (but never exceeds) the effective peak.
    assert bws[-1] < NOCTUA_HOST.peak_bandwidth_gbps()
    assert bws[-1] > 0.9 * NOCTUA_HOST.peak_bandwidth_gbps()


def test_zero_byte_bandwidth_is_zero():
    assert NOCTUA_HOST.p2p_bandwidth_gbps(0) == 0.0


def test_time_increases_with_size():
    assert NOCTUA_HOST.p2p_time_s(1 << 20) > NOCTUA_HOST.p2p_time_s(1 << 10)


def test_collectives_flat_then_rising():
    # Figs. 10-11: the MPI+OpenCL curves are flat (fixed-cost dominated)
    # for small messages and grow for large ones.
    t_small = NOCTUA_HOST.bcast_time_s(1, SMI_FLOAT, 8)
    t_small2 = NOCTUA_HOST.bcast_time_s(256, SMI_FLOAT, 8)
    t_big = NOCTUA_HOST.bcast_time_s(1 << 20, SMI_FLOAT, 8)
    assert t_small2 < 1.1 * t_small
    assert t_big > 4 * t_small


def test_collective_rounds_grow_with_ranks():
    t4 = NOCTUA_HOST.bcast_time_s(1 << 16, SMI_FLOAT, 4)
    t8 = NOCTUA_HOST.bcast_time_s(1 << 16, SMI_FLOAT, 8)
    assert t8 > t4


def test_reduce_slower_than_bcast():
    # The combine step adds host FLOPs.
    n = 1 << 18
    assert NOCTUA_HOST.reduce_time_s(n, SMI_FLOAT, 8) > NOCTUA_HOST.bcast_time_s(
        n, SMI_FLOAT, 8
    )


def test_scatter_gather_linear_in_ranks():
    n = 1 << 12
    t4 = NOCTUA_HOST.scatter_time_s(n, SMI_FLOAT, 4)
    t8 = NOCTUA_HOST.scatter_time_s(n, SMI_FLOAT, 8)
    assert t8 > t4
    assert NOCTUA_HOST.gather_time_s(n, SMI_FLOAT, 8) == pytest.approx(t8)


def test_custom_model_segments():
    model = HostPathModel(segments=(Segment("only", 10.0, 1e9),))
    assert model.p2p_latency_us() == pytest.approx(10.0)
    assert model.peak_bandwidth_gbps() == pytest.approx(1.0)
    # 1 Gbit/s: 125 MB takes ~1 s + latency.
    assert model.p2p_time_s(125_000_000) == pytest.approx(1.0, rel=0.01)


def test_single_rank_collective_has_no_rounds():
    t = NOCTUA_HOST.bcast_time_s(1024, SMI_FLOAT, 1)
    assert t == pytest.approx(NOCTUA_HOST.collective_fixed_us * 1e-6)
