"""Cruise-mode induction: edge cases, counters, and backoff hygiene.

The cycle-exactness of cruise against the per-flit reference is pinned by
``tests/test_burst_equivalence.py`` and the fuzz sweep; this module
covers the induction's control surface — externalities ending a cruise,
the Δ-drift guard, deep-buffer park/wake races, the ``PlannerStats``
cruise counters, and the futility-backoff reset on plane (re)wiring.
"""

import numpy as np
import pytest

from repro import NOCTUA, NOCTUA_DEEP, NOCTUA_XDEEP, SMIProgram, noctua_bus
from repro.codegen.metadata import OpDecl
from repro.core.datatypes import SMI_FLOAT
from repro.simulation.stats import PlannerStats, collect_planner_stats
from repro.transport import planner as planner_mod
from repro.transport.arbiter import PollingArbiter
from repro.transport.planner import SupplyPlanner


def _stream(config, n, hops, stall_at=None, stall_for=0):
    """One p2p stream; returns (end cycle, PlannerStats, transport)."""
    prog = SMIProgram(noctua_bus(), config=config)
    data = np.arange(n, dtype=np.float32)
    marks = {}

    def snd(smi):
        ch = smi.open_send_channel(n, SMI_FLOAT, hops, 0)
        if stall_at is None:
            yield from ch.push_vec(data, width=8)
        else:
            yield from ch.push_vec(data[:stall_at], width=8)
            yield smi.wait(stall_for)
            yield from ch.push_vec(data[stall_at:], width=8)

    def rcv(smi):
        ch = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
        out = yield from ch.pop_vec(n, width=8)
        marks["out"] = out
        marks["end"] = smi.cycle

    prog.add_kernel(snd, rank=0,
                    ops=[OpDecl("send", 0, SMI_FLOAT, peer=hops)])
    prog.add_kernel(rcv, rank=hops,
                    ops=[OpDecl("recv", 0, SMI_FLOAT, peer=0)])
    res = prog.run(max_cycles=50_000_000)
    assert res.completed, res.reason
    np.testing.assert_array_equal(marks["out"], data)
    return marks["end"], collect_planner_stats(res.transport), res.transport


# ----------------------------------------------------------------------
# Externalities and the Δ-drift guard
# ----------------------------------------------------------------------
def test_externality_appears_mid_cruise():
    """A sender stall breaks the Δ-shift exactly where trains cruise:
    the bound scan must stop at the externality (drifted supply), fall
    back to validated replication / planning, and stay cycle-exact."""
    n = 8192
    stall = dict(stall_at=4096, stall_for=171)
    ref, _, _ = _stream(NOCTUA_DEEP.with_(burst_mode=False), n, 4, **stall)
    fast, stats, _ = _stream(NOCTUA_DEEP, n, 4, **stall)
    assert fast == ref
    assert stats.cruise_rounds > 0
    # Some scans were bounded to zero rounds (the failed inductions).
    assert stats.cruise_checks > stats.cruise_commits


def test_cruise_stop_records_externality():
    """The session diagnostics name the externality that ended each
    cruise scan (supply depth, slot budget, readiness, key drift)."""
    stops = []

    def dbg(order):
        for sess in order:
            if sess.cruise_stop is not None:
                stops.append(sess.cruise_stop[0])

    planner_mod._train_debug = dbg
    try:
        ref, _, _ = _stream(NOCTUA_DEEP.with_(burst_mode=False), 8192, 4)
        fast, stats, _ = _stream(NOCTUA_DEEP, 8192, 4)
    finally:
        planner_mod._train_debug = None
    assert fast == ref
    assert stats.cruise_checks > 0
    assert stops, "expected cruise scans to record their bounding externality"
    assert set(stops) <= {"supply", "slots", "ready", "early", "key"}


def test_delta_drift_guard_caps_cruise_bursts(monkeypatch):
    """With CRUISE_MAX_ROUNDS forced to 1, every cruise burst commits at
    most one round (each re-anchored by a validated round) and the cycle
    trajectory is unchanged."""
    ref, ref_stats, _ = _stream(NOCTUA_XDEEP, 1 << 14, 4)
    assert ref_stats.cruise_rounds > ref_stats.cruise_commits, \
        "precondition: unguarded cruise commits multi-round bursts"
    monkeypatch.setattr(planner_mod, "CRUISE_MAX_ROUNDS", 1)
    capped, stats, _ = _stream(NOCTUA_XDEEP, 1 << 14, 4)
    assert capped == ref
    assert stats.cruise_rounds == stats.cruise_commits > 0


def test_deep_buffer_park_wake_race():
    """Repeated sender stalls at deep depths park mid-pipeline CKs while
    inventories drain; the park/wake races replicate (and cruise) across
    the stall boundaries cycle-exactly."""
    n = 4096
    stall = dict(stall_at=1024, stall_for=613)
    ref, _, _ = _stream(NOCTUA_DEEP.with_(burst_mode=False), n, 4, **stall)
    fast, stats, _ = _stream(NOCTUA_DEEP, n, 4, **stall)
    assert fast == ref
    assert stats.replications > 0


def test_cruise_disabled_is_silent_and_exact():
    cfg_off = NOCTUA_DEEP.with_(cruise_induction=False)
    ref, _, _ = _stream(NOCTUA_DEEP.with_(burst_mode=False), 4096, 4)
    off, stats_off, _ = _stream(cfg_off, 4096, 4)
    on, stats_on, _ = _stream(NOCTUA_DEEP, 4096, 4)
    assert off == ref == on
    assert stats_off.cruise_checks == 0
    assert stats_off.cruise_rounds == 0
    assert stats_on.cruise_rounds > 0


# ----------------------------------------------------------------------
# PlannerStats cruise counters
# ----------------------------------------------------------------------
def test_cruise_counter_invariants_on_real_run():
    _, stats, _ = _stream(NOCTUA_XDEEP, 1 << 14, 4)
    assert stats.cruise_commits <= stats.cruise_checks
    assert stats.cruise_rounds >= stats.cruise_commits > 0
    # Every cruise round is a replicated round.
    assert stats.cruise_rounds <= stats.replicated_rounds
    assert 0.0 < stats.cruise_hit_rate <= 1.0


def test_planner_summary_renders_cruise_counters():
    from repro.harness import planner_summary

    stats = PlannerStats(attempts=4, windows=3, window_cycles=300,
                         coplans=7, pattern_checks=5, replications=4,
                         replicated_rounds=10, cruise_checks=4,
                         cruise_commits=2, cruise_rounds=6)
    line = planner_summary(stats)
    assert "cruise: 6 rounds in 2 bursts" in line
    assert "induction hit 0.50" in line
    assert "4 trains" in line


def test_cruise_counters_merge_and_properties():
    a = PlannerStats(cruise_checks=4, cruise_commits=2, cruise_rounds=10)
    b = PlannerStats(cruise_checks=1, cruise_commits=1, cruise_rounds=3)
    m = a.merge(b)
    assert (m.cruise_checks, m.cruise_commits, m.cruise_rounds) == (5, 3, 13)
    assert m.cruise_hit_rate == pytest.approx(3 / 5)
    assert PlannerStats().cruise_hit_rate == 0.0


# ----------------------------------------------------------------------
# Futility backoff reset on plane (re)wiring
# ----------------------------------------------------------------------
def test_arbiter_reset_backoff_restores_initial_state():
    from repro.simulation import Engine

    eng = Engine()
    f = eng.fifo("f", capacity=4)
    arb = PollingArbiter([f], read_burst=8)
    arb._plan_miss = 1
    arb._plan_skip = 100
    arb._plan_skip_len = 4096
    arb._rep_miss = 1
    arb._rep_skip = 99
    arb._rep_skip_len = 2048
    arb.reset_backoff()
    assert arb._plan_miss == 0 and arb._plan_skip == 0
    assert arb._plan_skip_len == PollingArbiter.PLAN_SKIP_POLLS
    assert arb._rep_miss == 0 and arb._rep_skip == 0
    assert arb._rep_skip_len == PollingArbiter.REP_SKIP_POLLS


def test_supply_planner_reset_backoff_covers_wired_cks():
    """A rebuilt plane must not inherit escalated skip lengths from an
    earlier run in the same process: ``SupplyPlanner.reset_backoff``
    (called by the builder after wiring) restores every wired arbiter."""
    _, _, transport = _stream(NOCTUA, 2048, 2)
    cks = [ck for rt in transport.ranks.values()
           for ck in list(rt.cks.values()) + list(rt.ckr.values())]
    sp = cks[0].supply_planner
    assert isinstance(sp, SupplyPlanner)
    # The run escalated backoff somewhere (idle CKs plan nothing).
    escalated = [ck for ck in cks
                 if ck.arbiter._plan_skip or ck.arbiter._rep_skip
                 or ck.arbiter._plan_skip_len
                 != PollingArbiter.PLAN_SKIP_POLLS
                 or ck.arbiter._rep_skip_len
                 != PollingArbiter.REP_SKIP_POLLS]
    assert escalated, "expected some arbiter to have escalated its backoff"
    sp.reset_backoff()
    for ck in cks:
        arb = ck.arbiter
        assert arb._plan_skip == 0 and arb._rep_skip == 0
        assert arb._plan_skip_len == PollingArbiter.PLAN_SKIP_POLLS
        assert arb._rep_skip_len == PollingArbiter.REP_SKIP_POLLS


def test_builder_resets_backoff_on_fresh_wiring():
    """Freshly built transports start from the initial backoff state
    even after other builds escalated theirs in the same process."""
    _stream(NOCTUA, 2048, 2)  # escalate somewhere, then rebuild:
    _, _, transport = _stream(NOCTUA, 64, 1)
    for rt in transport.ranks.values():
        for ck in list(rt.cks.values()) + list(rt.ckr.values()):
            # Short run: whatever state remains must be self-earned, and
            # skip lengths never exceed one escalation step per miss run.
            assert ck.arbiter._plan_skip_len <= PollingArbiter.PLAN_SKIP_MAX
