"""Unit tests for communicators."""

import pytest

from repro import SMIComm
from repro.core.errors import ConfigurationError


def test_world_communicator():
    comm = SMIComm.world(8)
    assert comm.size == 8
    assert comm.ranks == tuple(range(8))
    for r in range(8):
        assert comm.comm_rank_of(r) == r
        assert comm.global_rank(r) == r


def test_sub_communicator_translation():
    world = SMIComm.world(8)
    sub = world.sub([3, 5, 7])
    assert sub.size == 3
    assert sub.global_rank(0) == 3
    assert sub.global_rank(2) == 7
    assert sub.comm_rank_of(5) == 1
    assert sub.contains(5)
    assert not sub.contains(0)


def test_sub_of_sub():
    world = SMIComm.world(8)
    sub = world.sub([1, 3, 5, 7]).sub([0, 3])
    assert sub.ranks == (1, 7)


def test_reordered_communicator():
    comm = SMIComm((4, 0, 2))
    assert comm.comm_rank_of(4) == 0
    assert comm.comm_rank_of(2) == 2
    assert comm.global_rank(1) == 0


def test_empty_communicator_rejected():
    with pytest.raises(ConfigurationError):
        SMIComm(())


def test_duplicate_ranks_rejected():
    with pytest.raises(ConfigurationError, match="duplicate"):
        SMIComm((1, 1, 2))


def test_negative_rank_rejected():
    with pytest.raises(ConfigurationError):
        SMIComm((0, -1))


def test_unknown_global_rank():
    comm = SMIComm((0, 2))
    with pytest.raises(ConfigurationError, match="not in communicator"):
        comm.comm_rank_of(1)


def test_comm_rank_out_of_range():
    comm = SMIComm((0, 2))
    with pytest.raises(ConfigurationError, match="out of range"):
        comm.global_rank(5)
