"""Burst fast path vs per-flit reference: cycle-exact equivalence.

The acceptance bar for ``HardwareConfig.burst_mode`` (the batched data
plane through FIFO -> arbiter -> CKS/CKR -> link) is that it changes
*nothing* observable: every workload must produce identical results,
identical ``RunResult.cycles``, and identical per-FIFO push/pop counts
and occupancy peaks with the flag on or off. Only wall-clock simulation
speed may differ.
"""

import numpy as np
import pytest

from repro import NOCTUA, SMI_FLOAT, SMI_INT, SMIProgram, bus, noctua_bus
from repro.apps.gesummv import run_distributed_sim as gesummv_sim
from repro.apps.stencil import jacobi_reference
from repro.apps.stencil import run_distributed_sim as stencil_sim
from repro.codegen.metadata import OpDecl
from repro.core.ops import SMI_ADD
from repro.network.topology import torus2d


def _cfg(burst):
    return NOCTUA.with_(burst_mode=burst)


def _fifo_counts(engine):
    """Per-FIFO (pushes, pops, max_occupancy) — burst-invariant stats.

    ``max_occupancy`` is computed from a time-indexed delta log of exact
    per-item cycles in both modes, so comparing it does double duty: it
    proves the statistic itself and — because any per-item cycle skew
    would shift the log — that every individual stage and take landed on
    the per-flit reference cycle.
    """
    return {
        name: (s["pushes"], s["pops"], s["max_occupancy"])
        for name, s in engine.fifo_stats().items()
    }


def _run_both(build):
    """Run ``build(config)`` with burst off/on; assert cycle/stat equality.

    ``build`` returns a :class:`repro.core.program.ProgramResult`; the
    per-flit interpretation (burst off) is the reference.
    """
    ref = build(_cfg(False))
    fast = build(_cfg(True))
    assert fast.cycles == ref.cycles
    assert _fifo_counts(fast.engine) == _fifo_counts(ref.engine)
    return ref, fast


# ----------------------------------------------------------------------
# Point-to-point streams
# ----------------------------------------------------------------------
@pytest.mark.parametrize("hops", [1, 4, 6])
@pytest.mark.parametrize("n,width", [(40, 4), (1024, 8), (515, 8)])
def test_p2p_stream_equivalence(hops, n, width):
    data = np.arange(n, dtype=np.float32)

    def build(config):
        prog = SMIProgram(noctua_bus(), config=config)

        def snd(smi):
            ch = smi.open_send_channel(n, SMI_FLOAT, hops, 0)
            yield from ch.push_vec(data, width=width)

        def rcv(smi):
            ch = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
            out = yield from ch.pop_vec(n, width=width)
            smi.store("out", out)
            smi.store("end", smi.cycle)

        prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, SMI_FLOAT)])
        prog.add_kernel(rcv, rank=hops, ops=[OpDecl("recv", 0, SMI_FLOAT)])
        res = prog.run(max_cycles=50_000_000)
        assert res.completed, res.reason
        return res

    ref, fast = _run_both(build)
    assert ref.store(hops, "end") == fast.store(hops, "end")
    np.testing.assert_array_equal(fast.store(hops, "out"), data)


def test_p2p_bidirectional_same_port_equivalence():
    """Two opposing streams share the fabric (live inputs on both sides)."""
    n = 200

    def build(config):
        prog = SMIProgram(bus(3), config=config)

        # rank0 sends on port 0, receives on port 1; rank2 mirrors.
        def k0(smi):
            s = smi.open_send_channel(n, SMI_INT, 2, 0)
            for i in range(n):
                yield from smi.push(s, i)
            r = smi.open_recv_channel(n, SMI_INT, 2, 1)
            got = []
            for _ in range(n):
                got.append(int((yield from smi.pop(r))))
            smi.store("got", got)

        def k2(smi):
            s = smi.open_send_channel(n, SMI_INT, 0, 1)
            for i in range(n):
                yield from smi.push(s, 100000 + i)
            r = smi.open_recv_channel(n, SMI_INT, 0, 0)
            got = []
            for _ in range(n):
                got.append(int((yield from smi.pop(r))))
            smi.store("got", got)

        prog.add_kernel(k0, rank=0, ops=[OpDecl("send", 0, SMI_INT),
                                         OpDecl("recv", 1, SMI_INT)])
        prog.add_kernel(k2, rank=2, ops=[OpDecl("send", 1, SMI_INT),
                                         OpDecl("recv", 0, SMI_INT)])
        res = prog.run(max_cycles=50_000_000)
        assert res.completed, res.reason
        return res

    ref, fast = _run_both(build)
    assert fast.store(0, "got") == [100000 + i for i in range(n)]
    assert fast.store(2, "got") == list(range(n))


# ----------------------------------------------------------------------
# Credit-based flow control
# ----------------------------------------------------------------------
@pytest.mark.parametrize("window,stall", [(4, 0), (2, 300)])
def test_credited_p2p_equivalence(window, stall):
    n = 150
    ops = [OpDecl("send", 0, SMI_INT), OpDecl("recv", 0, SMI_INT)]

    def build(config):
        prog = SMIProgram(bus(2), config=config)

        def sender(smi):
            ch = smi.open_credited_send_channel(n, SMI_INT, 1, 0,
                                                window_packets=window)
            for i in range(n):
                yield from smi.push(ch, i)

        def receiver(smi):
            ch = smi.open_credited_recv_channel(n, SMI_INT, 0, 0,
                                                window_packets=window)
            if stall:
                yield smi.wait(stall)
            out = []
            for _ in range(n):
                out.append(int((yield from smi.pop(ch))))
            smi.store("out", out)

        prog.add_kernel(sender, rank=0, ops=ops)
        prog.add_kernel(receiver, rank=1, ops=ops)
        res = prog.run(max_cycles=10_000_000)
        assert res.completed, res.reason
        return res

    ref, fast = _run_both(build)
    assert fast.store(1, "out") == list(range(n))


# ----------------------------------------------------------------------
# Collectives (support kernels keep every transit FIFO flow-live)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["bcast", "reduce"])
def test_collective_equivalence(kind):
    n = 64
    num_ranks = 4

    def build(config):
        prog = SMIProgram(noctua_bus(), config=config)
        op = (OpDecl("reduce", 0, SMI_FLOAT, reduce_op=SMI_ADD)
              if kind == "reduce" else OpDecl("bcast", 0, SMI_FLOAT))

        def kernel(smi):
            comm = smi.comm_world.sub(list(range(num_ranks)))
            if not comm.contains(smi.rank):
                return
                yield  # pragma: no cover
            out = []
            if kind == "bcast":
                chan = smi.open_bcast_channel(n, SMI_FLOAT, 0, 0, comm)
                for i in range(n):
                    v = yield from chan.bcast(
                        float(i) if smi.rank == 0 else None)
                    out.append(float(v))
            else:
                chan = smi.open_reduce_channel(n, SMI_FLOAT, SMI_ADD, 0, 0,
                                               comm)
                for i in range(n):
                    v = yield from chan.reduce(float(smi.rank + i))
                    if smi.rank == 0:
                        out.append(float(v))
            smi.store("out", out)
            smi.store("end", smi.cycle)

        prog.add_kernel(kernel, ranks="all", ops=[op])
        res = prog.run(max_cycles=50_000_000)
        assert res.completed, res.reason
        return res

    ref, fast = _run_both(build)
    for rank in range(num_ranks):
        assert ref.store(rank, "end") == fast.store(rank, "end")
    if kind == "bcast":
        assert fast.store(3, "out") == [float(i) for i in range(n)]
    else:
        expect = [float(sum(r + i for r in range(num_ranks)))
                  for i in range(n)]
        assert fast.store(0, "out") == expect


@pytest.mark.parametrize("kind", ["scatter", "gather"])
def test_scatter_gather_equivalence(kind):
    """Streaming scatter/gather: the root's interleaved feed/drain loops
    (burst-batched via the app-side supply contract) must stay
    cycle-identical to the literal per-flit interleave."""
    count = 40
    num_ranks = 4

    def build(config):
        prog = SMIProgram(noctua_bus(), config=config)
        op = OpDecl(kind, 0, SMI_FLOAT)

        def kernel(smi):
            comm = smi.comm_world.sub(list(range(num_ranks)))
            if not comm.contains(smi.rank):
                return
                yield  # pragma: no cover
            if kind == "scatter":
                chan = smi.open_scatter_channel(count, SMI_FLOAT, 0, 0, comm)
                if smi.rank == 0:
                    values = [float(i) for i in range(count * num_ranks)]
                    mine = yield from chan.stream_root(values)
                else:
                    mine = []
                    for _ in range(count):
                        v = yield from chan.pop()
                        mine.append(float(v))
                smi.store("mine", [float(v) for v in mine])
            else:
                chan = smi.open_gather_channel(count, SMI_FLOAT, 0, 0, comm)
                mine = [float(smi.rank * 1000 + i) for i in range(count)]
                if smi.rank == 0:
                    got = yield from chan.collect_root(mine)
                    smi.store("got", [float(v) for v in got])
                else:
                    for v in mine:
                        yield from chan.push(v)
            smi.store("end", smi.cycle)

        prog.add_kernel(kernel, ranks="all", ops=[op])
        res = prog.run(max_cycles=50_000_000)
        assert res.completed, res.reason
        return res

    ref, fast = _run_both(build)
    for rank in range(num_ranks):
        assert ref.store(rank, "end") == fast.store(rank, "end")
    if kind == "scatter":
        for rank in range(num_ranks):
            expect = [float(rank * count + i) for i in range(count)]
            assert fast.store(rank, "mine") == expect
    else:
        expect = [float(r * 1000 + i)
                  for r in range(num_ranks) for i in range(count)]
        assert fast.store(0, "got") == expect


@pytest.mark.parametrize("kind", ["bcast", "scatter"])
def test_collective_tiny_buffers_equivalence(kind):
    """Starved endpoint buffers drive the support kernels' burst stream
    into its unknown-backpressure boundary (send_ep full with no known
    release mid-run): the fallback to literal element steps must keep
    cycles exact."""
    n = 48
    num_ranks = 3

    def build(config):
        prog = SMIProgram(
            noctua_bus(),
            config=config.with_(endpoint_fifo_depth=1,
                                endpoint_latency_cycles=1,
                                inter_ck_fifo_depth=2),
        )
        op = OpDecl(kind, 0, SMI_FLOAT)

        def kernel(smi):
            comm = smi.comm_world.sub(list(range(num_ranks)))
            if not comm.contains(smi.rank):
                return
                yield  # pragma: no cover
            if kind == "bcast":
                chan = smi.open_bcast_channel(n, SMI_FLOAT, 0, 0, comm)
                out = []
                for i in range(n):
                    v = yield from chan.bcast(
                        float(i) if smi.rank == 0 else None)
                    out.append(float(v))
                smi.store("out", out)
            else:
                chan = smi.open_scatter_channel(n, SMI_FLOAT, 0, 0, comm)
                if smi.rank == 0:
                    vals = [float(i) for i in range(n * num_ranks)]
                    mine = yield from chan.stream_root(vals)
                else:
                    mine = []
                    for _ in range(n):
                        mine.append(float((yield from chan.pop())))
                smi.store("out", [float(v) for v in mine])
            smi.store("end", smi.cycle)

        prog.add_kernel(kernel, ranks="all", ops=[op])
        res = prog.run(max_cycles=50_000_000)
        assert res.completed, res.reason
        return res

    ref, fast = _run_both(build)
    for rank in range(num_ranks):
        assert ref.store(rank, "end") == fast.store(rank, "end")
    if kind == "bcast":
        assert fast.store(2, "out") == [float(i) for i in range(n)]
    else:
        assert fast.store(1, "out") == [float(n + i) for i in range(n)]


def test_mixed_stencil_collective_equivalence():
    """A p2p halo exchange and a broadcast share the fabric in one run:
    cascaded plans must stay exact with live collective traffic in
    flight (no static flow-liveness help — every transit FIFO is live)."""
    n_halo = 96
    n_bcast = 32
    num_ranks = 3

    def build(config):
        prog = SMIProgram(noctua_bus(), config=config)

        def kernel(smi):
            comm = smi.comm_world.sub(list(range(num_ranks)))
            if not comm.contains(smi.rank):
                return
                yield  # pragma: no cover
            right = (smi.rank + 1) % num_ranks
            left = (smi.rank - 1) % num_ranks
            data = np.full(n_halo, float(smi.rank), dtype=np.float32)

            def exchange():
                snd = smi.open_send_channel(n_halo, SMI_FLOAT, right, 1)
                yield from snd.push_vec(data, width=8)
                rcv = smi.open_recv_channel(n_halo, SMI_FLOAT, left, 1)
                halo = yield from rcv.pop_vec(n_halo, width=8)
                smi.store("halo", halo)

            smi.engine.spawn(exchange(), f"halo{smi.rank}")
            chan = smi.open_bcast_channel(n_bcast, SMI_FLOAT, 0, 0, comm)
            got = []
            for i in range(n_bcast):
                v = yield from chan.bcast(
                    float(i) if smi.rank == 0 else None)
                got.append(float(v))
            smi.store("bcast", got)
            smi.store("end", smi.cycle)

        prog.add_kernel(
            kernel, ranks=list(range(num_ranks)),
            ops=[OpDecl("bcast", 0, SMI_FLOAT),
                 OpDecl("send", 1, SMI_FLOAT),
                 OpDecl("recv", 1, SMI_FLOAT)])
        res = prog.run(max_cycles=50_000_000)
        assert res.completed, res.reason
        return res

    ref, fast = _run_both(build)
    for rank in range(num_ranks):
        assert ref.store(rank, "end") == fast.store(rank, "end")
        assert fast.store(rank, "bcast") == [float(i) for i in range(n_bcast)]
        np.testing.assert_array_equal(
            fast.store(rank, "halo"),
            np.full(n_halo, float((rank - 1) % num_ranks), dtype=np.float32))


# ----------------------------------------------------------------------
# Applications
# ----------------------------------------------------------------------
def test_gesummv_equivalence():
    rng = np.random.default_rng(7)
    n = 24
    A = rng.standard_normal((n, n)).astype(np.float32)
    B = rng.standard_normal((n, n)).astype(np.float32)
    x = rng.standard_normal(n).astype(np.float32)
    y_ref, us_ref = gesummv_sim(0.5, 2.0, A, B, x, config=_cfg(False))
    y_fast, us_fast = gesummv_sim(0.5, 2.0, A, B, x, config=_cfg(True))
    assert us_fast == us_ref
    np.testing.assert_array_equal(y_fast, y_ref)


def test_stencil_equivalence():
    rng = np.random.default_rng(11)
    grid = rng.standard_normal((12, 12)).astype(np.float32)
    topo = torus2d(2, 2)
    out_ref, us_ref = stencil_sim(grid, 3, (2, 2), topology=topo,
                                  config=_cfg(False))
    out_fast, us_fast = stencil_sim(grid, 3, (2, 2), topology=topo,
                                    config=_cfg(True))
    assert us_fast == us_ref
    np.testing.assert_array_equal(out_fast, out_ref)
    np.testing.assert_allclose(
        out_fast, jacobi_reference(grid, 3).astype(np.float32), atol=1e-4)


def test_two_senders_error_cycle_equivalence():
    """A stream violation (two senders on one port) must raise at the same
    simulated cycle with the same FIFO state in both modes — the burst
    planner stops before the offending packet and lets the per-flit path
    consume it."""
    from repro.core.errors import ChannelError

    def build(config):
        prog = SMIProgram(bus(3), config=config)
        n = 32
        caught = {}

        def s0(smi):
            ch = smi.open_send_channel(n, SMI_FLOAT, 2, 0)
            yield from ch.push_vec(np.zeros(n, dtype=np.float32), width=8)

        def s1(smi):
            yield smi.wait(40)
            ch = smi.open_send_channel(n, SMI_FLOAT, 2, 0)
            yield from ch.push_vec(np.ones(n, dtype=np.float32), width=8)

        def rcv(smi):
            ch = smi.open_recv_channel(2 * n, SMI_FLOAT, 0, 0)
            try:
                yield from ch.pop_vec(2 * n, width=8)
            except ChannelError:
                caught["cycle"] = smi.cycle
                caught["received"] = ch.elements_received
            smi.store("caught", dict(caught))

        prog.add_kernel(s0, rank=0, ops=[OpDecl("send", 0, SMI_FLOAT)])
        prog.add_kernel(s1, rank=1, ops=[OpDecl("send", 0, SMI_FLOAT)])
        prog.add_kernel(rcv, rank=2, ops=[OpDecl("recv", 0, SMI_FLOAT)])
        res = prog.run(max_cycles=1_000_000)
        assert res.completed, res.reason
        return res

    ref = build(_cfg(False))
    fast = build(_cfg(True))
    assert ref.store(2, "caught")["cycle"] > 0
    assert fast.store(2, "caught") == ref.store(2, "caught")


def test_reduce_stream_equivalence():
    """``ReduceChannel.reduce_stream``: the app-side batched contribution
    (and the root's interleaved drain) must be cycle-identical to the
    literal per-element interleave, in both data-plane modes."""
    n = 96
    num_ranks = 4

    def build(config):
        prog = SMIProgram(noctua_bus(), config=config)
        op = OpDecl("reduce", 0, SMI_FLOAT, reduce_op=SMI_ADD)

        def kernel(smi):
            comm = smi.comm_world.sub(list(range(num_ranks)))
            if not comm.contains(smi.rank):
                return
                yield  # pragma: no cover
            chan = smi.open_reduce_channel(n, SMI_FLOAT, SMI_ADD, 0, 0, comm)
            mine = [float(smi.rank + i) for i in range(n)]
            out = yield from chan.reduce_stream(mine)
            if smi.rank == 0:
                smi.store("out", [float(v) for v in out])
            smi.store("end", smi.cycle)

        prog.add_kernel(kernel, ranks="all", ops=[op])
        res = prog.run(max_cycles=50_000_000)
        assert res.completed, res.reason
        return res

    ref, fast = _run_both(build)
    for rank in range(num_ranks):
        assert ref.store(rank, "end") == fast.store(rank, "end")
    expect = [float(sum(r + i for r in range(num_ranks))) for i in range(n)]
    assert fast.store(0, "out") == expect


# ----------------------------------------------------------------------
# Steady-state pattern replication
# ----------------------------------------------------------------------
def _stream_cycles(config, n, hops, stall_at=None, stall_for=0):
    """One p2p stream run; returns (cycles, aggregate PlannerStats)."""
    from repro.simulation.stats import collect_planner_stats

    prog = SMIProgram(noctua_bus(), config=config)
    data = np.arange(n, dtype=np.float32)
    marks = {}

    def snd(smi):
        ch = smi.open_send_channel(n, SMI_FLOAT, hops, 0)
        if stall_at is None:
            yield from ch.push_vec(data, width=8)
        else:
            yield from ch.push_vec(data[:stall_at], width=8)
            yield smi.wait(stall_for)
            yield from ch.push_vec(data[stall_at:], width=8)

    def rcv(smi):
        ch = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
        out = yield from ch.pop_vec(n, width=8)
        marks["out"] = out
        marks["end"] = smi.cycle

    prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, SMI_FLOAT,
                                             peer=hops)])
    prog.add_kernel(rcv, rank=hops, ops=[OpDecl("recv", 0, SMI_FLOAT,
                                                peer=0)])
    res = prog.run(max_cycles=50_000_000)
    assert res.completed, res.reason
    np.testing.assert_array_equal(marks["out"], data)
    return marks["end"], collect_planner_stats(res.transport)


@pytest.mark.slow
def test_replication_delta_drift_mid_train():
    """A mid-stream sender stall breaks the steady-state Δ-shift exactly
    where a train would be replicating: the pattern must fail validation
    at the drift (k < K rounds), fall back to the window planner, and
    stay cycle-exact end to end."""
    n = 4096
    stall = dict(stall_at=2048, stall_for=137)
    ref, _ = _stream_cycles(_cfg(False), n, 4, **stall)
    fast, stats = _stream_cycles(_cfg(True), n, 4, **stall)
    assert fast == ref
    # The long steady phases on either side of the drift do replicate.
    assert stats.replications > 0


@pytest.mark.slow
def test_replication_across_parked_ck():
    """Steady-state replication on a long multi-hop stream (mid-pipeline
    CKs park between link-paced packets; their park races replicate as
    pattern observations). Cycle-exact, with committed trains."""
    n = 4096
    ref, _ = _stream_cycles(_cfg(False), n, 4)
    fast, stats = _stream_cycles(_cfg(True), n, 4)
    assert fast == ref
    assert stats.replications > 0
    assert stats.replicated_rounds >= stats.replications


def test_replication_disabled_stays_exact_and_silent():
    """``pattern_replication=False`` must keep the burst plane cycle-exact
    (the --fail-below-parity CI workloads run both ways) and commit zero
    trains, with identical cycles to the replication-enabled plane."""
    n = 2048
    cfg_off = _cfg(True).with_(pattern_replication=False)
    ref, _ = _stream_cycles(_cfg(False), n, 4)
    off, stats_off = _stream_cycles(cfg_off, n, 4)
    on, _ = _stream_cycles(_cfg(True), n, 4)
    assert off == ref == on
    assert stats_off.replications == 0
    assert stats_off.pattern_checks == 0


@pytest.mark.slow
def test_replication_disabled_collective_parity():
    """Collective workloads (the parity-gated smoke kind) stay cycle-exact
    with replication on, off, and per-flit."""
    n = 128
    num_ranks = 4

    def run(config):
        prog = SMIProgram(noctua_bus(), config=config)
        op = OpDecl("reduce", 0, SMI_FLOAT, reduce_op=SMI_ADD)
        marks = {}

        def kernel(smi):
            comm = smi.comm_world.sub(list(range(num_ranks)))
            if not comm.contains(smi.rank):
                return
                yield  # pragma: no cover
            chan = smi.open_reduce_channel(n, SMI_FLOAT, SMI_ADD, 0, 0, comm)
            for i in range(n):
                yield from chan.reduce(float(smi.rank + i))
            marks[smi.rank] = smi.cycle

        prog.add_kernel(kernel, ranks="all", ops=[op])
        res = prog.run(max_cycles=50_000_000)
        assert res.completed, res.reason
        return max(marks.values())

    ref = run(_cfg(False))
    assert run(_cfg(True)) == ref
    assert run(_cfg(True).with_(pattern_replication=False)) == ref


# ----------------------------------------------------------------------
# Cruise-mode induction (deep-buffer regime)
# ----------------------------------------------------------------------
def test_cruise_three_way_equivalence_deep_buffers():
    """The acceptance bar for cruise-mode induction: at deep buffer
    depths (where trains exceed one round and the induction engages) the
    per-flit, validated-replication, and cruise planes must agree on
    every cycle — and cruise must actually have committed rounds."""
    from repro import NOCTUA_DEEP

    n = 2048
    flit, _ = _stream_cycles(NOCTUA_DEEP.with_(burst_mode=False), n, 4)
    validated, stats_v = _stream_cycles(
        NOCTUA_DEEP.with_(cruise_induction=False), n, 4)
    cruise, stats_c = _stream_cycles(NOCTUA_DEEP, n, 4)
    assert flit == validated == cruise
    assert stats_v.cruise_rounds == 0
    assert stats_c.cruise_rounds > 0
    # Cruise replaces validation work, never train reach: both planes
    # replicate, and the cruise rounds are a subset of replicated rounds.
    assert stats_c.replicated_rounds >= stats_c.cruise_rounds
    assert stats_c.replications > 0


@pytest.mark.slow
@pytest.mark.parametrize("hops", [1, 4, 6])
def test_cruise_three_way_equivalence_deep_sweep(hops):
    """Full-size deep-buffer sweep of the 3-way equality (nightly job)."""
    from repro import NOCTUA_XDEEP

    n = 8192
    flit, _ = _stream_cycles(NOCTUA_XDEEP.with_(burst_mode=False), n, hops)
    validated, _ = _stream_cycles(
        NOCTUA_XDEEP.with_(cruise_induction=False), n, hops)
    cruise, stats = _stream_cycles(NOCTUA_XDEEP, n, hops)
    assert flit == validated == cruise
    if hops > 1:
        assert stats.cruise_rounds > 0


# ----------------------------------------------------------------------
# Raw FIFO burst helpers
# ----------------------------------------------------------------------
def test_fifo_push_pop_burst_equivalence():
    """``push_burst``/``pop_burst`` match ``push_many``/``pop_many``
    cycle-for-cycle (the raw-FIFO burst API used outside the transport)."""
    from repro.simulation import Engine

    def run(burst):
        eng = Engine()
        f = eng.fifo("f", capacity=6, latency=2)
        marks = {}

        def producer():
            if burst:
                yield from f.push_burst(range(40))
            else:
                yield from f.push_many(range(40))
            marks["push_end"] = eng.cycle

        def consumer():
            if burst:
                out = yield from f.pop_burst(40)
            else:
                out = yield from f.pop_many(40)
            marks["pop_end"] = eng.cycle
            marks["out"] = out

        eng.spawn(producer(), "producer")
        eng.spawn(consumer(), "consumer")
        res = eng.run(max_cycles=10_000)
        assert res.completed
        return marks, (f.pushes, f.pops)

    ref, ref_stats = run(False)
    fast, fast_stats = run(True)
    assert fast["push_end"] == ref["push_end"]
    assert fast["pop_end"] == ref["pop_end"]
    assert fast["out"] == ref["out"] == list(range(40))
    assert fast_stats == ref_stats


# ----------------------------------------------------------------------
# Flow-liveness analysis
# ----------------------------------------------------------------------
def test_flow_dead_marking_and_tripwire():
    """With one declared flow, off-route transit FIFOs are provably dead;
    staging into one trips the guard instead of silently diverging."""
    from repro.core.errors import SimulationError

    prog = SMIProgram(noctua_bus(), config=_cfg(True))
    seen = {}

    def snd(smi):
        ch = smi.open_send_channel(8, SMI_FLOAT, 2, 0)
        yield from ch.push_vec(np.zeros(8, dtype=np.float32), width=8)
        seen["fifos"] = {
            f.name: f.flow_dead for f in smi.engine.fifos
        }

    def rcv(smi):
        ch = smi.open_recv_channel(8, SMI_FLOAT, 0, 0)
        yield from ch.pop_vec(8, width=8)
        # The tripwire: a flow-dead FIFO refuses stage().
        dead = [f for f in smi.engine.fifos if f.flow_dead]
        assert dead, "expected some flow-dead transit FIFOs"
        with pytest.raises(SimulationError, match="flow-dead"):
            dead[0].stage(object())

    prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, SMI_FLOAT)])
    prog.add_kernel(rcv, rank=2, ops=[OpDecl("recv", 0, SMI_FLOAT)])
    res = prog.run(max_cycles=1_000_000)
    assert res.completed, res.reason
    # The backward direction of the bus carries no declared flow.
    dead_names = [name for name, d in seen["fifos"].items() if d]
    assert any("ckr" in name and "cks" in name for name in dead_names)


def test_wrong_peer_rejected_at_channel_open():
    """A channel contradicting a declared static peer fails fast with an
    actionable error instead of tripping the flow-dead guard mid-run."""
    from repro.core.errors import ChannelError

    prog = SMIProgram(bus(3), config=_cfg(True))
    caught = {}

    def snd(smi):
        try:
            smi.open_send_channel(8, SMI_FLOAT, 1, 0)
        except ChannelError as e:
            caught["msg"] = str(e)
        return
        yield  # pragma: no cover

    def rcv(smi):
        return
        yield  # pragma: no cover

    prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, SMI_FLOAT, peer=2)])
    prog.add_kernel(rcv, rank=1, ops=[OpDecl("recv", 0, SMI_FLOAT)])
    res = prog.run(max_cycles=1000)
    assert res.completed
    assert "peer=2" in caught["msg"]


def test_out_of_topology_peer_rejected_at_build():
    from repro.core.errors import CodegenError

    prog = SMIProgram(bus(2), config=_cfg(True))

    def kernel(smi):
        return
        yield  # pragma: no cover

    prog.add_kernel(kernel, rank=0,
                    ops=[OpDecl("send", 0, SMI_FLOAT, peer=200)])
    with pytest.raises(CodegenError, match="peer 200 does not exist"):
        prog.run(max_cycles=1000)


def test_flow_liveness_disabled_without_burst_mode():
    prog = SMIProgram(bus(2), config=_cfg(False))

    def snd(smi):
        ch = smi.open_send_channel(4, SMI_INT, 1, 0)
        for i in range(4):
            yield from smi.push(ch, i)

    def rcv(smi):
        ch = smi.open_recv_channel(4, SMI_INT, 0, 0)
        for _ in range(4):
            yield from smi.pop(ch)
        assert not any(f.flow_dead for f in smi.engine.fifos)

    prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, SMI_INT)])
    prog.add_kernel(rcv, rank=1, ops=[OpDecl("recv", 0, SMI_INT)])
    res = prog.run(max_cycles=1_000_000)
    assert res.completed, res.reason
