"""Test configuration: make ``repro`` importable even without installation."""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz-iters",
        type=int,
        default=25,
        help="random cases run by the slow-marked extended fuzz sweep "
        "(tests/test_burst_fuzz.py); the ~20 seeded tier-1 cases always "
        "run regardless of this knob",
    )
