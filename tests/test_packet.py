"""Unit + property tests for the 32-byte wire packet codec."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.datatypes import (
    PACKET_BYTES,
    SMI_CHAR,
    SMI_DOUBLE,
    SMI_FLOAT,
    SMI_INT,
)
from repro.core.errors import ConfigurationError, SimulationError
from repro.network.packet import MAX_VALID_COUNT, OpType, Packet, make_data_packets


def test_wire_size_is_32_bytes():
    pkt = Packet(src=1, dst=2, port=3)
    assert len(pkt.encode()) == PACKET_BYTES


def test_header_layout_exact():
    # src | dst | port | (op << 5 | count)  — §4.2.
    pkt = Packet(src=0xAB, dst=0xCD, port=0x11, op=OpType.CREDIT, count=5)
    wire = pkt.encode()
    assert wire[0] == 0xAB
    assert wire[1] == 0xCD
    assert wire[2] == 0x11
    assert wire[3] == (OpType.CREDIT << 5) | 5


def test_data_packet_roundtrip_int():
    data = np.array([10, -20, 30], dtype=np.int32)
    pkt = Packet(src=1, dst=2, port=3, op=OpType.DATA, count=3,
                 payload=data, dtype=SMI_INT)
    out = Packet.decode(pkt.encode(), SMI_INT)
    assert (out.src, out.dst, out.port, out.op, out.count) == (1, 2, 3, OpType.DATA, 3)
    np.testing.assert_array_equal(out.elements(), data)


@given(
    src=st.integers(0, 255),
    dst=st.integers(0, 255),
    port=st.integers(0, 255),
    op=st.sampled_from(list(OpType)),
    values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=0, max_size=7,
    ),
)
def test_roundtrip_property_float(src, dst, port, op, values):
    payload = np.array(values, dtype=np.float32)
    pkt = Packet(src=src, dst=dst, port=port, op=op,
                 count=len(values), payload=payload, dtype=SMI_FLOAT)
    out = Packet.decode(pkt.encode(), SMI_FLOAT)
    assert (out.src, out.dst, out.port, out.op, out.count) == (
        src, dst, port, op, len(values)
    )
    np.testing.assert_array_equal(out.elements(), payload)


@given(values=st.lists(st.integers(-128, 127), min_size=0, max_size=28))
def test_roundtrip_property_char_full_packet(values):
    payload = np.array(values, dtype=np.int8)
    pkt = Packet(src=0, dst=1, port=0, count=len(values),
                 payload=payload, dtype=SMI_CHAR)
    out = Packet.decode(pkt.encode(), SMI_CHAR)
    np.testing.assert_array_equal(out.elements(), payload)


def test_max_valid_count_fits_5_bits():
    assert MAX_VALID_COUNT == 31
    assert SMI_CHAR.elements_per_packet <= MAX_VALID_COUNT


@pytest.mark.parametrize("field", ["src", "dst", "port"])
def test_header_fields_reject_more_than_8_bits(field):
    kwargs = {"src": 0, "dst": 0, "port": 0, field: 256}
    with pytest.raises(ConfigurationError, match="1-byte header"):
        Packet(**kwargs)


def test_count_rejects_more_than_5_bits():
    with pytest.raises(ConfigurationError):
        Packet(src=0, dst=0, port=0, count=32)


def test_count_rejects_exceeding_dtype_capacity():
    with pytest.raises(ConfigurationError, match="capacity"):
        Packet(src=0, dst=0, port=0, count=5,
               payload=np.zeros(5, np.float64), dtype=SMI_DOUBLE)


def test_decode_rejects_wrong_length():
    with pytest.raises(SimulationError):
        Packet.decode(b"\x00" * 31)


def test_decode_rejects_invalid_op_bits():
    wire = bytearray(32)
    wire[3] = 0b111 << 5  # op=7 undefined
    with pytest.raises(SimulationError, match="op-type"):
        Packet.decode(bytes(wire))


def test_control_packet_has_no_payload_bytes():
    pkt = Packet(src=0, dst=1, port=2, op=OpType.SYNC_READY)
    assert pkt.payload_bytes == 0
    out = Packet.decode(pkt.encode())
    assert out.op == OpType.SYNC_READY
    assert out.count == 0


@given(n=st.integers(0, 200))
def test_make_data_packets_partition(n):
    data = np.arange(n, dtype=np.int32)
    pkts = make_data_packets(0, 1, 2, SMI_INT, data)
    assert len(pkts) == SMI_INT.packets_for(n)
    # Every packet except possibly the last is full.
    for pkt in pkts[:-1]:
        assert pkt.count == SMI_INT.elements_per_packet
    recovered = np.concatenate([p.elements() for p in pkts]) if pkts else np.zeros(0)
    np.testing.assert_array_equal(recovered, data)


def test_make_data_packets_payload_isolated_from_source():
    data = np.arange(7, dtype=np.int32)
    pkts = make_data_packets(0, 1, 2, SMI_INT, data)
    data[0] = 999
    assert pkts[0].elements()[0] == 0
