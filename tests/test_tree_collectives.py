"""Tests for the tree-based collective extension (§4.4's suggested schema)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import NOCTUA, SMI_ADD, SMI_FLOAT, SMI_INT, SMI_MAX, SMIProgram
from repro.codegen.metadata import OpDecl
from repro.core.errors import CodegenError
from repro.network.topology import noctua_torus, torus2d


def run_tree_bcast(topology, n, root, dtype=SMI_FLOAT, config=NOCTUA):
    prog = SMIProgram(topology, config=config)
    marks: dict[int, int] = {}

    def kernel(smi):
        chan = smi.open_bcast_channel(n, dtype, 0, root)
        out = []
        for i in range(n):
            v = yield from chan.bcast(
                dtype.np_dtype.type(i * 3) if smi.rank == root else None
            )
            out.append(v)
        smi.store("out", out)
        marks[smi.rank] = smi.cycle

    prog.add_kernel(kernel, ranks="all",
                    ops=[OpDecl("bcast", 0, dtype, scheme="tree")])
    res = prog.run(max_cycles=10_000_000)
    assert res.completed, res.reason
    return res, max(marks.values())


def run_tree_reduce(topology, n, root, op=SMI_ADD, config=NOCTUA,
                    contributions=None):
    prog = SMIProgram(topology, config=config)
    marks: dict[int, int] = {}

    def kernel(smi):
        chan = smi.open_reduce_channel(n, SMI_FLOAT, op, 0, root)
        out = []
        for i in range(n):
            value = (contributions[smi.rank][i] if contributions is not None
                     else np.float32(smi.rank * 10 + i))
            v = yield from chan.reduce(value)
            if smi.rank == root:
                out.append(float(v))
        if smi.rank == root:
            smi.store("out", out)
        marks[smi.rank] = smi.cycle

    prog.add_kernel(
        kernel, ranks="all",
        ops=[OpDecl("reduce", 0, SMI_FLOAT, reduce_op=op, scheme="tree")],
    )
    res = prog.run(max_cycles=10_000_000)
    assert res.completed, res.reason
    return res, res.store(root, "out"), max(marks.values())


def test_tree_bcast_delivers_everywhere():
    res, _ = run_tree_bcast(noctua_torus(), 30, root=0)
    expect = [float(i * 3) for i in range(30)]
    for r in range(8):
        np.testing.assert_allclose(res.store(r, "out"), expect)


def test_tree_bcast_nonzero_root():
    res, _ = run_tree_bcast(torus2d(2, 2), 12, root=2)
    expect = [float(i * 3) for i in range(12)]
    for r in range(4):
        np.testing.assert_allclose(res.store(r, "out"), expect)


def test_tree_bcast_int():
    res, _ = run_tree_bcast(noctua_torus(), 9, root=5, dtype=SMI_INT)
    for r in range(8):
        assert [int(v) for v in res.store(r, "out")] == [i * 3 for i in range(9)]


def test_tree_reduce_sum_matches_numpy():
    _, out, _ = run_tree_reduce(noctua_torus(), 25, root=0)
    expect = [sum(r * 10 + i for r in range(8)) for i in range(25)]
    np.testing.assert_allclose(out, expect)


def test_tree_reduce_max():
    rng = np.random.default_rng(9)
    contribs = {r: rng.normal(size=12).astype(np.float32) for r in range(8)}
    _, out, _ = run_tree_reduce(noctua_torus(), 12, root=0, op=SMI_MAX,
                                contributions=contribs)
    stacked = np.stack([contribs[r] for r in range(8)])
    np.testing.assert_allclose(out, stacked.max(axis=0), rtol=1e-6)


def test_tree_reduce_crossing_credit_tiles():
    cfg = NOCTUA.with_(reduce_credits=16)
    _, out, _ = run_tree_reduce(noctua_torus(), 70, root=0, config=cfg)
    expect = [sum(r * 10 + i for r in range(8)) for i in range(70)]
    np.testing.assert_allclose(out, expect)


def test_tree_reduce_nonzero_root():
    _, out, _ = run_tree_reduce(torus2d(2, 2), 10, root=3)
    expect = [sum(r * 10 + i for r in range(4)) for i in range(10)]
    np.testing.assert_allclose(out, expect)


@settings(deadline=None, max_examples=8)
@given(n=st.integers(1, 40), root=st.integers(0, 7))
def test_property_tree_bcast_any_root_any_size(n, root):
    res, _ = run_tree_bcast(noctua_torus(), n, root=root)
    expect = [float(i * 3) for i in range(n)]
    for r in range(8):
        np.testing.assert_allclose(res.store(r, "out"), expect)


def _linear_reduce_cycles(topology, n):
    prog = SMIProgram(topology)
    marks: dict[int, int] = {}

    def kernel(smi):
        chan = smi.open_reduce_channel(n, SMI_FLOAT, SMI_ADD, 0, 0)
        for i in range(n):
            yield from chan.reduce(np.float32(i))
        marks[smi.rank] = smi.cycle

    prog.add_kernel(
        kernel, ranks="all",
        ops=[OpDecl("reduce", 0, SMI_FLOAT, reduce_op=SMI_ADD)],
    )
    res = prog.run(max_cycles=10_000_000)
    assert res.completed
    return max(marks.values())


def test_tree_reduce_faster_than_linear_on_8_ranks():
    n = 1024
    linear = _linear_reduce_cycles(noctua_torus(), n)
    _, _, tree = run_tree_reduce(noctua_torus(), n, root=0)
    assert tree < linear, (tree, linear)


def test_tree_bcast_lower_latency_for_small_messages():
    """Tree depth ~log2(P) vs chain length P-1: small-message broadcast
    completes earlier with the tree."""

    def linear_bcast_cycles(n):
        prog = SMIProgram(noctua_torus())
        marks: dict[int, int] = {}

        def kernel(smi):
            chan = smi.open_bcast_channel(n, SMI_FLOAT, 0, 0)
            for i in range(n):
                yield from chan.bcast(float(i) if smi.rank == 0 else None)
            marks[smi.rank] = smi.cycle

        prog.add_kernel(kernel, ranks="all",
                        ops=[OpDecl("bcast", 0, SMI_FLOAT)])
        res = prog.run(max_cycles=10_000_000)
        assert res.completed
        return max(marks.values())

    _, tree = run_tree_bcast(noctua_torus(), 4, root=0)
    linear = linear_bcast_cycles(4)
    assert tree < linear, (tree, linear)


def test_tree_scheme_rejected_for_scatter_gather():
    with pytest.raises(CodegenError, match="tree scheme"):
        OpDecl("scatter", 0, SMI_INT, scheme="tree")
    with pytest.raises(CodegenError, match="tree scheme"):
        OpDecl("gather", 0, SMI_INT, scheme="tree")
    with pytest.raises(CodegenError, match="unknown collective scheme"):
        OpDecl("bcast", 0, SMI_INT, scheme="fractal")


def test_tree_and_linear_coexist_on_distinct_ports():
    prog = SMIProgram(torus2d(2, 2))
    n = 16

    def lin_app(smi):
        chan = smi.open_bcast_channel(n, SMI_INT, 0, 0)
        out = []
        for i in range(n):
            v = yield from chan.bcast(i if smi.rank == 0 else None)
            out.append(int(v))
        smi.store("lin", out)

    def tree_app(smi):
        chan = smi.open_bcast_channel(n, SMI_INT, 1, 0)
        out = []
        for i in range(n):
            v = yield from chan.bcast(100 + i if smi.rank == 0 else None)
            out.append(int(v))
        smi.store("tree", out)

    prog.add_kernel(lin_app, ranks="all", ops=[OpDecl("bcast", 0, SMI_INT)])
    prog.add_kernel(tree_app, ranks="all",
                    ops=[OpDecl("bcast", 1, SMI_INT, scheme="tree")])
    res = prog.run(max_cycles=10_000_000)
    assert res.completed
    for r in range(4):
        assert res.store(r, "lin") == list(range(n))
        assert res.store(r, "tree") == [100 + i for i in range(n)]
