"""Edge-case tests for channel descriptors and the context API."""

import numpy as np
import pytest

from repro import (
    SMI_FLOAT,
    SMI_INT,
    ChannelError,
    ConfigurationError,
    MessageOverrunError,
    SMIProgram,
    bus,
)
from repro.codegen.metadata import OpDecl

P2P = [OpDecl("send", 0, SMI_INT), OpDecl("recv", 0, SMI_INT)]


def _run(kernel0, kernel1=None, ops0=None, ops1=None, max_cycles=500_000):
    prog = SMIProgram(bus(2))
    prog.add_kernel(kernel0, rank=0, ops=ops0 if ops0 is not None else P2P)
    if kernel1 is not None:
        prog.add_kernel(kernel1, rank=1,
                        ops=ops1 if ops1 is not None else P2P)
    return prog.run(max_cycles=max_cycles)


def test_zero_count_channel_is_immediately_closed():
    def kernel(smi):
        ch = smi.open_send_channel(0, SMI_INT, 1, 0)
        assert ch.closed
        assert ch.elements_sent == 0
        with pytest.raises(MessageOverrunError):
            yield from smi.push(ch, 1)

    res = _run(kernel, ops0=[OpDecl("send", 0, SMI_INT)])


def test_negative_count_rejected():
    def kernel(smi):
        smi.open_send_channel(-1, SMI_INT, 1, 0)
        yield None

    with pytest.raises(ChannelError, match="count"):
        _run(kernel, ops0=[OpDecl("send", 0, SMI_INT)])


def test_channel_progress_counters():
    def sender(smi):
        ch = smi.open_send_channel(10, SMI_INT, 1, 0)
        for i in range(10):
            assert ch.elements_sent == i
            assert not ch.closed
            yield from smi.push(ch, i)
        assert ch.closed

    def receiver(smi):
        ch = smi.open_recv_channel(10, SMI_INT, 0, 0)
        for i in range(10):
            assert ch.elements_received == i
            yield from smi.pop(ch)
        assert ch.closed

    res = _run(sender, receiver, ops0=[OpDecl("send", 0, SMI_INT)],
               ops1=[OpDecl("recv", 0, SMI_INT)])
    assert res.completed


def test_push_vec_rejects_bad_width():
    def kernel(smi):
        ch = smi.open_send_channel(8, SMI_INT, 1, 0)
        yield from ch.push_vec(np.arange(8, dtype=np.int32), width=0)

    with pytest.raises(ChannelError, match="width"):
        _run(kernel, ops0=[OpDecl("send", 0, SMI_INT)])


def test_push_vec_overrun_detected_before_any_send():
    def kernel(smi):
        ch = smi.open_send_channel(4, SMI_INT, 1, 0)
        yield from ch.push_vec(np.arange(5, dtype=np.int32))

    with pytest.raises(MessageOverrunError):
        _run(kernel, ops0=[OpDecl("send", 0, SMI_INT)])


def test_pop_vec_overrun_detected():
    def sender(smi):
        ch = smi.open_send_channel(4, SMI_INT, 1, 0)
        yield from ch.push_vec(np.arange(4, dtype=np.int32))

    def receiver(smi):
        ch = smi.open_recv_channel(4, SMI_INT, 0, 0)
        yield from ch.pop_vec(5)

    with pytest.raises(MessageOverrunError):
        _run(sender, receiver, ops0=[OpDecl("send", 0, SMI_INT)],
             ops1=[OpDecl("recv", 0, SMI_INT)])


def test_pop_vec_partial_then_elementwise():
    def sender(smi):
        ch = smi.open_send_channel(10, SMI_INT, 1, 0)
        yield from ch.push_vec(np.arange(10, dtype=np.int32) * 2)

    def receiver(smi):
        ch = smi.open_recv_channel(10, SMI_INT, 0, 0)
        head = yield from ch.pop_vec(6, width=3)
        tail = []
        for _ in range(4):
            v = yield from ch.pop()
            tail.append(int(v))
        smi.store("out", list(head) + tail)

    res = _run(sender, receiver, ops0=[OpDecl("send", 0, SMI_INT)],
               ops1=[OpDecl("recv", 0, SMI_INT)])
    assert res.store(1, "out") == [2 * i for i in range(10)]


def test_destination_out_of_communicator_rejected():
    def kernel(smi):
        smi.open_send_channel(4, SMI_INT, 7, 0)  # world has 2 ranks
        yield None

    with pytest.raises(ConfigurationError, match="out of range"):
        _run(kernel, ops0=[OpDecl("send", 0, SMI_INT)])


def test_context_wait_rejects_nonpositive():
    def kernel(smi):
        yield smi.wait(0)

    with pytest.raises(ConfigurationError):
        _run(kernel, ops0=[])


def test_comm_rank_and_size_helpers():
    prog = SMIProgram(bus(4))

    def kernel(smi):
        assert smi.comm_size() == 4
        assert smi.comm_rank() == smi.rank
        sub = smi.comm_world.sub([3, 1])
        if smi.rank in (1, 3):
            assert smi.comm_size(sub) == 2
            assert smi.comm_rank(sub) == (0 if smi.rank == 3 else 1)
        smi.store("ok", True)
        yield None

    prog.add_kernel(kernel, ranks="all", ops=[])
    res = prog.run(max_cycles=1000)
    assert all(res.store(r, "ok") for r in range(4))


def test_program_generate_report():
    prog = SMIProgram(bus(2))

    @prog.kernel(rank=0)
    def sender(smi):
        ch = smi.open_send_channel(4, SMI_FLOAT, 1, 2)
        for i in range(4):
            yield from smi.push(ch, float(i))

    @prog.kernel(rank=1)
    def receiver(smi):
        ch = smi.open_recv_channel(4, SMI_FLOAT, 0, 2)
        for _ in range(4):
            yield from smi.pop(ch)

    report = prog.generate_report()
    assert report.num_ranks == 2
    assert 2 in report.ranks[0].send_endpoints
    assert 2 in report.ranks[1].recv_endpoints
    assert report.ranks[0].resources.total.luts > 0
