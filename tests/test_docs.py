"""Docs lint as part of tier-1: keep the architecture doc navigable.

Runs the same checks as the CI docs job (``tools/check_docs.py``):
internal anchors of ``docs/ARCHITECTURE.md`` resolve, relative links in
the checked markdown files exist, and every ``src/repro/transport``
module carries a non-empty docstring.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import check_docs  # noqa: E402


def test_docs_clean():
    errors = check_docs.run_checks()
    assert not errors, "\n".join(errors)


def test_github_slugs():
    assert check_docs.github_slug("The SupplySchedule contract") == \
        "the-supplyschedule-contract"
    assert check_docs.github_slug("Plan / cascade / replicate") == \
        "plan--cascade--replicate"


def test_checker_flags_broken_anchor(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text("# Title\n\nsee [x](#missing) and [y](./nope.md)\n")
    errors = check_docs.check_markdown(bad)
    assert any("#missing" in e for e in errors)
    assert any("nope.md" in e for e in errors)


def test_checker_flags_missing_required_section(tmp_path):
    """Dropping a contract section (e.g. 'Cruise mode & induction') from
    the architecture doc is a lint error, not a silent doc rot."""
    doc = tmp_path / "ARCHITECTURE.md"
    doc.write_text("# Architecture\n\n## Pattern replication\n\ntext\n")
    errors = check_docs.check_required_anchors(doc)
    assert any("Cruise mode & induction" in e for e in errors)
    assert any("Horizon semantics" in e for e in errors)
    assert not any("Pattern replication" in e for e in errors)


def test_required_sections_present_in_real_doc():
    errors = check_docs.check_required_anchors(
        check_docs.ROOT / "docs" / "ARCHITECTURE.md")
    assert not errors, "\n".join(errors)
