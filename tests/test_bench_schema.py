"""BENCH_smoke.json schema vs ``benchmarks/README.md``: no drift allowed.

Builds a real (tiny) report with ``benchmarks/run_smoke.py``'s own point
builders, then asserts every emitted field is documented in the README's
schema tables and every documented field is emitted — in both
directions, for the per-point fields, the ``planner`` counters, and the
``headline``. A field added to the runner without documentation (or
documented but no longer emitted) fails here instead of silently
drifting.
"""

import importlib
import re
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = ROOT / "benchmarks"


@pytest.fixture(scope="module")
def run_smoke():
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    return importlib.import_module("run_smoke")


@pytest.fixture(scope="module")
def tiny_report(run_smoke):
    """A real report at the smallest sizes the builders accept."""
    points = run_smoke.run_stream_points((256,), repeats=1)
    points += run_smoke.run_collective_points((16,), repeats=1)
    points += run_smoke.run_macro_points((256,), repeats=1)
    points += run_smoke.run_trace_points(256, repeats=1)
    # The shard sweep on the cheap in-process backend: same schema as
    # the CI run's forked-worker sweep.
    points += run_smoke.run_shard_points(256, repeats=1, backend="sharded",
                                         shard_counts=(2, 4))
    return {
        "benchmark": "smoke",
        "quick": True,
        "points": points,
        "headline": run_smoke.build_headline(points),
    }


def _expand_braces(name: str) -> list[str]:
    """Expand one ``{a,b}`` group in a documented field name."""
    m = re.search(r"\{([^}]+)\}", name)
    if not m:
        return [name]
    out = []
    for alt in m.group(1).split(","):
        expanded = name[: m.start()] + alt.strip() + name[m.end():]
        out.extend(_expand_braces(expanded))
    return out


def _documented_fields(section_heading: str) -> set[str]:
    """Field names from the first markdown table after ``section_heading``."""
    text = (BENCH_DIR / "README.md").read_text(encoding="utf-8")
    idx = text.find(section_heading)
    assert idx >= 0, f"README section not found: {section_heading}"
    fields: set[str] = set()
    in_table = False
    for line in text[idx:].splitlines()[1:]:
        if line.startswith("|"):
            in_table = True
            cell = line.split("|")[1].strip()
            for name in re.findall(r"`([^`]+)`", cell):
                fields.update(_expand_braces(name))
        elif in_table:
            break  # table ended
    assert fields, f"no fields parsed under: {section_heading}"
    return fields


def test_per_point_fields_match_readme(tiny_report):
    documented = _documented_fields("### Per-point fields")
    emitted = {key for p in tiny_report["points"] for key in p}
    undocumented = emitted - documented
    assert not undocumented, (
        f"fields emitted by run_smoke.py but not documented in "
        f"benchmarks/README.md: {sorted(undocumented)}"
    )
    # Optional fields (hops/bytes/buffers vs ranks) appear on a subset of
    # points, but every documented field must appear on some point.
    unemitted = documented - emitted
    assert not unemitted, (
        f"fields documented in benchmarks/README.md but never emitted: "
        f"{sorted(unemitted)}"
    )


def test_planner_counters_match_readme(tiny_report):
    documented = _documented_fields("### `planner` counters")
    emitted = {key for p in tiny_report["points"]
               for key in p.get("planner", ())}
    assert emitted == documented, (
        f"planner counter drift — emitted-not-documented: "
        f"{sorted(emitted - documented)}, documented-not-emitted: "
        f"{sorted(documented - emitted)}"
    )


def test_headline_fields_match_readme(tiny_report):
    documented = _documented_fields("### `headline` fields")
    emitted = set(tiny_report["headline"])
    assert emitted == documented, (
        f"headline field drift — emitted-not-documented: "
        f"{sorted(emitted - documented)}, documented-not-emitted: "
        f"{sorted(documented - emitted)}"
    )


def test_top_level_fields_match_readme(tiny_report):
    documented = _documented_fields("Top level:")
    assert set(tiny_report) == documented
