"""Smoke tests: every shipped example must run clean end to end.

Each example asserts its own correctness internally (data verified against
expectations/NumPy), so a zero exit status means the demonstrated feature
actually worked.
"""

import os
import subprocess
import sys

import pytest

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_EXAMPLES = os.path.join(_ROOT, "examples")

ALL_EXAMPLES = sorted(
    f for f in os.listdir(_EXAMPLES) if f.endswith(".py")
)


def test_every_example_is_covered():
    assert set(ALL_EXAMPLES) == {
        "quickstart.py",
        "collectives_tour.py",
        "gesummv_pipeline.py",
        "stencil_halo.py",
        "routing_workflow.py",
        "flow_control.py",
    }


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES, script)],
        capture_output=True,
        text=True,
        timeout=240,
        env=env,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script} printed nothing"
