"""Unit + property tests for route generation and deadlock-freedom checking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import RoutingError
from repro.network.routing import (
    Routes,
    channel_dependency_graph,
    compute_routes,
    is_deadlock_free,
)
from repro.network.topology import (
    Connection,
    Topology,
    bus,
    noctua_bus,
    noctua_torus,
    ring,
    torus2d,
)


def all_pairs_reachable(routes: Routes) -> bool:
    n = routes.topology.num_ranks
    for src in range(n):
        for dst in range(n):
            path = routes.path(src, dst)
            if path[0] != src or path[-1] != dst:
                return False
    return True


def test_bus_shortest_paths_are_linear():
    routes = compute_routes(bus(8), scheme="shortest")
    for src in range(8):
        for dst in range(8):
            assert routes.hops(src, dst) == abs(src - dst)


def test_bus_routing_is_deadlock_free():
    routes = compute_routes(bus(8), scheme="shortest")
    assert is_deadlock_free(routes)


def test_torus_shortest_paths_are_minimal():
    top = noctua_torus()
    routes = compute_routes(top, scheme="shortest")
    hops = top.hop_matrix()
    for src in range(8):
        for dst in range(8):
            assert routes.hops(src, dst) == hops[src][dst]


def test_odd_ring_shortest_cdg_has_cycles():
    # On an odd ring every minimal path is unique, so all distance-2 routes
    # chain around the cycle: the classic cyclic channel dependency that
    # motivates deadlock-free routing schemes [8].
    routes = compute_routes(ring(5), scheme="shortest")
    assert not is_deadlock_free(routes)


def test_checker_detects_forced_clockwise_ring():
    # Hand-built all-clockwise routing on a 4-ring: textbook deadlock cycle.
    top = ring(4)
    tables = []
    for rank in range(4):
        table = {rank: None}
        for dst in range(4):
            if dst != rank:
                table[dst] = 1  # iface 1 always points to (rank+1) % 4
        tables.append(table)
    routes = Routes(top, "clockwise", tables)
    assert all_pairs_reachable(routes)
    assert not is_deadlock_free(routes)


def test_auto_falls_back_to_tree_on_odd_ring():
    routes = compute_routes(ring(5), scheme="auto")
    assert routes.scheme == "tree"
    assert routes.deadlock_free
    assert is_deadlock_free(routes)  # verify the claim with the checker
    assert all_pairs_reachable(routes)


def test_torus_tie_broken_shortest_is_deadlock_free():
    # The generator's deterministic low-rank tie-break acts as an ordering
    # function on the 2x4 and 4x4 tori: the checker proves the resulting
    # minimal routing deadlock-free, so 'auto' keeps minimal paths there.
    for top in (noctua_torus(), torus2d(4, 4)):
        routes = compute_routes(top, scheme="auto")
        assert routes.scheme == "shortest"
        assert is_deadlock_free(routes)


def test_auto_keeps_shortest_on_bus():
    routes = compute_routes(bus(8), scheme="auto")
    assert routes.scheme == "shortest"
    assert routes.deadlock_free


def test_tree_routing_reaches_everything_on_torus():
    routes = compute_routes(noctua_torus(), scheme="tree")
    assert all_pairs_reachable(routes)
    assert is_deadlock_free(routes)


def test_ring_shortest_takes_short_side():
    routes = compute_routes(ring(6), scheme="shortest")
    assert routes.hops(0, 1) == 1
    assert routes.hops(0, 5) == 1  # wraps
    assert routes.hops(0, 3) == 3


def test_egress_none_for_self():
    routes = compute_routes(bus(3))
    assert routes.egress(1, 1) is None


def test_egress_unknown_pair_raises():
    routes = compute_routes(bus(3))
    with pytest.raises(RoutingError):
        routes.egress(0, 17)


def test_unreachable_rank_raises():
    top = Topology(4, [Connection((0, 0), (1, 0)), Connection((2, 0), (3, 0))])
    with pytest.raises(RoutingError, match="unreachable"):
        compute_routes(top, scheme="shortest")
    with pytest.raises(RoutingError, match="unreachable"):
        compute_routes(top, scheme="tree")


def test_unknown_scheme_rejected():
    with pytest.raises(RoutingError, match="unknown routing scheme"):
        compute_routes(bus(3), scheme="warp")


def test_link_path_matches_path():
    top = noctua_bus()
    routes = compute_routes(top)
    links = routes.link_path(0, 4)
    assert len(links) == 4
    ranks = [r for r, _ in links]
    assert ranks == [0, 1, 2, 3]


def test_routes_serialization():
    routes = compute_routes(bus(3))
    data = routes.to_dict()
    assert data["scheme"] == "shortest"
    assert data["deadlock_free"] is True
    assert len(data["tables"]) == 3
    assert data["tables"][0]["1"] == 1  # rank 0 egress iface towards rank 1


def test_cdg_structure_on_bus():
    routes = compute_routes(bus(3))
    cdg = channel_dependency_graph(routes)
    # Bus of 3: channels 0->1, 1->2, 1->0, 2->1 (as (rank, iface) pairs).
    assert cdg.number_of_nodes() == 4
    # Dependencies: (0:1 then 1:1) and (2:0 then 1:0) only.
    assert cdg.number_of_edges() == 2


@st.composite
def random_connected_topology(draw):
    """A random connected topology honouring the 4-interface limit."""
    n = draw(st.integers(min_value=2, max_value=10))
    free = {rank: list(range(4)) for rank in range(n)}
    conns = []
    # Spanning chain guarantees connectivity.
    order = list(range(n))
    for a, b in zip(order, order[1:]):
        ia = free[a].pop(0)
        ib = free[b].pop(0)
        conns.append(Connection((a, ia), (b, ib)))
    # Extra random cables where ports remain.
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        candidates = [r for r in range(n) if free[r]]
        if len(candidates) < 2:
            break
        a = draw(st.sampled_from(candidates))
        b = draw(st.sampled_from([r for r in candidates if r != a]))
        conns.append(Connection((a, free[a].pop(0)), (b, free[b].pop(0))))
    return Topology(n, conns, num_interfaces=4, name="random")


@settings(deadline=None, max_examples=40)
@given(top=random_connected_topology())
def test_property_tree_routing_always_deadlock_free(top):
    routes = compute_routes(top, scheme="tree")
    assert all_pairs_reachable(routes)
    assert is_deadlock_free(routes)


@settings(deadline=None, max_examples=40)
@given(top=random_connected_topology())
def test_property_shortest_routing_minimal_and_loop_free(top):
    routes = compute_routes(top, scheme="shortest")
    hops = top.hop_matrix()
    for src in range(top.num_ranks):
        for dst in range(top.num_ranks):
            # path() raises on loops; hop count must be the BFS distance.
            assert routes.hops(src, dst) == hops[src][dst]


@settings(deadline=None, max_examples=40)
@given(top=random_connected_topology())
def test_property_auto_scheme_is_always_deadlock_free(top):
    routes = compute_routes(top, scheme="auto")
    assert routes.deadlock_free
    assert is_deadlock_free(routes)
    assert all_pairs_reachable(routes)


# ----------------------------------------------------------------------
# Partitioned sub-topologies (sharded backend satellite coverage)
# ----------------------------------------------------------------------
def test_link_path_crossing_a_shard_cut():
    """Every directed link a route traverses across a cut is a boundary
    link of exactly one shard pair, in path order."""
    from repro.shard import partition_topology

    topo = noctua_bus()
    routes = compute_routes(topo, scheme="shortest")
    part = partition_topology(topo, 2)
    shard_of = part.shard_of()
    links = routes.link_path(0, 7)
    assert len(links) == 7  # bus: one link per hop
    crossings = []
    for rank, iface in links:
        peer = topo.peer(rank, iface)
        assert peer is not None
        if shard_of[rank] != shard_of[peer[0]]:
            crossings.append(((rank, iface), peer))
    # A contiguous bus bisection is crossed exactly once, on a cut edge.
    assert len(crossings) == 1
    cut_pairs = {frozenset((c.a[0], c.b[0])) for c in part.cut}
    (src, dst) = crossings[0]
    assert frozenset((src[0], dst[0])) in cut_pairs


def test_link_path_multi_crossing_interleaved_cut():
    """An interleaved (worst-case) cut is crossed on every hop."""
    from repro.shard import partition_topology

    topo = noctua_bus()
    routes = compute_routes(topo, scheme="shortest")
    part = partition_topology(topo, 2,
                              rank_lists=[[0, 2, 4, 6], [1, 3, 5, 7]])
    shard_of = part.shard_of()
    links = routes.link_path(0, 7)
    crossings = sum(
        1 for rank, iface in links
        if shard_of[rank] != shard_of[topo.peer(rank, iface)[0]]
    )
    assert crossings == 7  # every hop of the bus crosses the cut
    assert len(part.cut) == len(topo.connections)


def test_deadlock_freedom_on_torus_and_irregular_cut_graphs():
    """The CDG check stays meaningful on the sub-topology shapes the
    partitioner produces: full tori, and irregular remainders."""
    torus_routes = compute_routes(noctua_torus(), scheme="tree")
    assert is_deadlock_free(torus_routes)
    # The 2x4 torus has wrap links; shortest routing may or may not be
    # acyclic, but auto must always come back deadlock-free.
    auto = compute_routes(noctua_torus(), scheme="auto")
    assert auto.deadlock_free and is_deadlock_free(auto)
    # Irregular "cut remainder" graph: a torus row plus a dangling spur
    # (what a 3-way cut of a 2x4 torus leaves behind).
    irregular = Topology(
        5,
        [
            Connection((0, 1), (1, 3)),
            Connection((1, 1), (2, 3)),
            Connection((2, 1), (0, 3)),  # 3-cycle
            Connection((2, 0), (3, 2)),  # spur
            Connection((3, 0), (4, 2)),
        ],
        name="cut-remainder",
    )
    shortest = compute_routes(irregular, scheme="shortest")
    cdg = channel_dependency_graph(shortest)
    assert cdg.number_of_nodes() > 0
    auto = compute_routes(irregular, scheme="auto")
    assert auto.deadlock_free and is_deadlock_free(auto)


def test_topology_json_round_trip_with_parallel_edges():
    """to_json/from_json keeps duplicate parallel cables (distinct
    interfaces between the same rank pair) and all routing behaviour."""
    topo = Topology(
        3,
        [
            Connection((0, 0), (1, 0)),
            Connection((0, 1), (1, 1)),  # parallel cable, same rank pair
            Connection((1, 2), (2, 0)),
        ],
        num_interfaces=4,
        name="parallel",
    )
    back = Topology.from_json(topo.to_json())
    assert back.num_ranks == topo.num_ranks
    assert back.num_interfaces == topo.num_interfaces
    assert back.name == topo.name
    assert [str(c) for c in back.connections] == \
        [str(c) for c in topo.connections]
    # Parallel edges survive as distinct multigraph edges.
    assert back.graph().number_of_edges(0, 1) == 2
    r_a = compute_routes(topo, scheme="shortest")
    r_b = compute_routes(back, scheme="shortest")
    assert r_a.next_iface == r_b.next_iface
    assert is_deadlock_free(r_a) == is_deadlock_free(r_b)
