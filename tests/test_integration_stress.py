"""Stress and property tests across the full stack: many concurrent
channels, random traffic patterns, protocol mixing, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import NOCTUA, SMI_ADD, SMI_FLOAT, SMI_INT, SMIProgram, noctua_torus
from repro.codegen.metadata import OpDecl
from repro.network.topology import torus2d


def test_all_to_one_convergecast_p2p():
    """Seven ranks stream to rank 0 simultaneously on distinct ports:
    exercises CKR fan-in, inter-CK forwarding and polling fairness."""
    prog = SMIProgram(noctua_torus())
    n = 40

    def make_sender(rank):
        def sender(smi):
            ch = smi.open_send_channel(n, SMI_INT, 0, rank)
            for i in range(n):
                yield from smi.push(ch, rank * 100 + i)

        return sender

    def sink(smi):
        chans = {r: smi.open_recv_channel(n, SMI_INT, r, r)
                 for r in range(1, 8)}
        outs = {r: [] for r in chans}
        remaining = {r: n for r in chans}
        # Drain all channels concurrently via spawned processes.
        done = []

        def drain(r, ch):
            for _ in range(n):
                v = yield from ch.pop()
                outs[r].append(int(v))
            done.append(r)

        for r, ch in list(chans.items())[1:]:
            smi.engine.spawn(drain(r, ch), f"drain{r}")
        first_r, first_ch = next(iter(chans.items()))
        yield from drain(first_r, first_ch)
        while len(done) < 7:
            yield smi.wait(32)
        smi.store("outs", outs)

    for r in range(1, 8):
        prog.add_kernel(make_sender(r), rank=r, name=f"tx{r}",
                        ops=[OpDecl("send", r, SMI_INT)])
    prog.add_kernel(sink, rank=0,
                    ops=[OpDecl("recv", p, SMI_INT) for p in range(1, 8)])
    res = prog.run(max_cycles=50_000_000)
    assert res.completed, res.reason
    outs = res.store(0, "outs")
    for r in range(1, 8):
        assert outs[r] == [r * 100 + i for i in range(n)]


def test_all_pairs_simultaneous_exchange():
    """Every rank sends to every other rank at once (8x7 = 56 concurrent
    transient channels through shared links)."""
    prog = SMIProgram(noctua_torus())
    n = 10
    P = 8

    def kernel(smi):
        me = smi.rank
        sends = {}
        recvs = {}
        for other in range(P):
            if other == me:
                continue
            # Port = sender rank: unique (send, recv) pairing per pair.
            sends[other] = smi.open_send_channel(n, SMI_INT, other, me)
            recvs[other] = smi.open_recv_channel(n, SMI_INT, other, other)
        done = []

        def tx(other, ch):
            for i in range(n):
                yield from ch.push(me * 1000 + other * 10 + i % 10)
            done.append(("t", other))

        def rx(other, ch):
            got = []
            for _ in range(n):
                v = yield from ch.pop()
                got.append(int(v))
            smi.store(f"from{other}", got)
            done.append(("r", other))

        for other, ch in sends.items():
            smi.engine.spawn(tx(other, ch), f"tx{me}->{other}")
        for other, ch in recvs.items():
            smi.engine.spawn(rx(other, ch), f"rx{me}<-{other}")
        while len(done) < 2 * (P - 1):
            yield smi.wait(64)

    ops = []
    for p in range(P):
        ops.append(OpDecl("send", p, SMI_INT))
        ops.append(OpDecl("recv", p, SMI_INT))
    # Each rank sends on its own port and receives on all others' ports;
    # declare the union (send+recv per port is legal).
    prog.add_kernel(kernel, ranks="all", ops=ops)
    res = prog.run(max_cycles=100_000_000)
    assert res.completed, res.reason
    for me in range(P):
        for other in range(P):
            if other == me:
                continue
            got = res.store(me, f"from{other}")
            expect = [other * 1000 + me * 10 + i % 10 for i in range(n)]
            assert got == expect, (me, other)


def test_determinism_of_full_program():
    """The same program produces bit-identical timing across runs."""

    def run():
        prog = SMIProgram(torus2d(2, 2))

        def kernel(smi):
            chan = smi.open_reduce_channel(64, SMI_FLOAT, SMI_ADD, 0, 0)
            for i in range(64):
                yield from chan.reduce(float(smi.rank * 3 + i))
            smi.store("end", smi.cycle)

        prog.add_kernel(
            kernel, ranks="all",
            ops=[OpDecl("reduce", 0, SMI_FLOAT, reduce_op=SMI_ADD)],
        )
        res = prog.run(max_cycles=10_000_000)
        assert res.completed
        return res.cycles, tuple(
            res.store(r, "end") for r in range(4)
        )

    assert run() == run()


@settings(deadline=None, max_examples=6)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(1, 60),
    port_base=st.integers(0, 200),
)
def test_property_random_pipeline_chain(seed, n, port_base):
    """A random 4-stage MPMD pipeline (rank i transforms and forwards to
    rank i+1) preserves data through arbitrary ports and sizes."""
    rng = np.random.default_rng(seed)
    data = rng.integers(-1000, 1000, size=n).astype(np.int32)
    prog = SMIProgram(torus2d(2, 2))

    def make_stage(rank):
        def stage(smi):
            if rank > 0:
                rcv = smi.open_recv_channel(n, SMI_INT, rank - 1,
                                            port_base + rank - 1)
            if rank < 3:
                snd = smi.open_send_channel(n, SMI_INT, rank + 1,
                                            port_base + rank)
            for i in range(n):
                if rank == 0:
                    value = int(data[i])
                else:
                    value = yield from smi.pop(rcv)
                value = int(value) + 1  # each stage increments
                if rank < 3:
                    yield from smi.push(snd, value)
                else:
                    smi.store(f"out{i}", value)

        return stage

    for rank in range(4):
        ops = []
        if rank > 0:
            ops.append(OpDecl("recv", port_base + rank - 1, SMI_INT))
        if rank < 3:
            ops.append(OpDecl("send", port_base + rank, SMI_INT))
        prog.add_kernel(make_stage(rank), rank=rank, name=f"stage{rank}",
                        ops=ops)
    res = prog.run(max_cycles=50_000_000)
    assert res.completed, res.reason
    for i in range(n):
        assert res.store(3, f"out{i}") == int(data[i]) + 4


def test_mixed_p2p_and_collective_traffic():
    """Point-to-point streams and a collective share the fabric."""
    prog = SMIProgram(torus2d(2, 2))
    n = 30

    def p2p_app(smi):
        if smi.rank == 0:
            ch = smi.open_send_channel(n, SMI_INT, 3, 5)
            for i in range(n):
                yield from smi.push(ch, i)
        elif smi.rank == 3:
            ch = smi.open_recv_channel(n, SMI_INT, 0, 5)
            out = []
            for _ in range(n):
                v = yield from smi.pop(ch)
                out.append(int(v))
            smi.store("p2p", out)
        else:
            return
            yield  # pragma: no cover

    def coll_app(smi):
        chan = smi.open_bcast_channel(n, SMI_FLOAT, 0, 1)
        out = []
        for i in range(n):
            v = yield from chan.bcast(float(i) if smi.rank == 1 else None)
            out.append(float(v))
        smi.store("bcast", out)

    prog.add_kernel(p2p_app, ranks=[0, 3], ops=[
        OpDecl("send", 5, SMI_INT), OpDecl("recv", 5, SMI_INT)
    ])
    prog.add_kernel(coll_app, ranks="all", ops=[OpDecl("bcast", 0, SMI_FLOAT)])
    res = prog.run(max_cycles=50_000_000)
    assert res.completed
    assert res.store(3, "p2p") == list(range(n))
    for r in range(4):
        assert res.store(r, "bcast") == [float(i) for i in range(n)]


def test_fabric_conservation_no_packet_loss():
    """Every DATA packet staged onto the fabric is delivered: link counters
    sum to what endpoint FIFOs consumed (lossless transport)."""
    prog = SMIProgram(torus2d(2, 2))
    n = 77  # 11 packets

    def sender(smi):
        ch = smi.open_send_channel(n, SMI_INT, 3, 0)
        for i in range(n):
            yield from smi.push(ch, i)

    def receiver(smi):
        ch = smi.open_recv_channel(n, SMI_INT, 0, 0)
        for _ in range(n):
            yield from smi.pop(ch)

    prog.add_kernel(sender, rank=0, ops=[OpDecl("send", 0, SMI_INT)])
    prog.add_kernel(receiver, rank=3, ops=[OpDecl("recv", 0, SMI_INT)])
    res = prog.run(max_cycles=10_000_000)
    assert res.completed
    fabric = res.transport.fabric
    hops = res.routes.hops(0, 3)
    expected_packets = SMI_INT.packets_for(n)
    assert fabric.total_packets() == expected_packets * hops
