"""Tests for the simulation measurement utilities."""

import pytest

from repro.core.config import NOCTUA
from repro.simulation.stats import (
    CycleHistogram,
    Stopwatch,
    link_utilization,
    payload_bandwidth_gbit_s,
)


def test_stopwatch_basic():
    sw = Stopwatch()
    sw.start(100)
    sw.stop(350)
    assert sw.cycles == 250
    assert sw.us(NOCTUA) == pytest.approx(NOCTUA.cycles_to_us(250))
    assert sw.seconds(NOCTUA) == pytest.approx(250 / NOCTUA.clock_hz)


def test_stopwatch_unset_raises():
    with pytest.raises(ValueError):
        Stopwatch().cycles  # noqa: B018


def test_payload_bandwidth_peak_consistency():
    # Moving 28 payload bytes every 2 cycles == the 35 Gbit/s payload peak.
    cycles = 2_000
    payload = 28 * (cycles // 2)
    bw = payload_bandwidth_gbit_s(payload, cycles, NOCTUA)
    assert bw == pytest.approx(35.0)


def test_payload_bandwidth_rejects_zero_cycles():
    with pytest.raises(ValueError):
        payload_bandwidth_gbit_s(100, 0, NOCTUA)


def test_link_utilization():
    assert link_utilization(50, 100) == pytest.approx(0.5)
    assert link_utilization(0, 0) == 0.0


def test_cycle_histogram():
    hist = CycleHistogram()
    for cycle in (10, 12, 15, 21):
        hist.record(cycle)
    assert hist.count == 3
    assert hist.gaps == [2, 3, 6]
    assert hist.mean_gap == pytest.approx(11 / 3)


def test_cycle_histogram_empty_mean_raises():
    with pytest.raises(ValueError):
        CycleHistogram().mean_gap  # noqa: B018
