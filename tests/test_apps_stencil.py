"""Tests for the SPMD stencil application (§5.4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.stencil import (
    FIG15_POINTS,
    StencilModel,
    jacobi_reference,
    run_distributed_sim,
)
from repro.core.errors import ConfigurationError
from repro.network.topology import torus2d


def _grid(nx, ny, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(nx, ny)).astype(np.float32)


@pytest.mark.parametrize("rank_grid,topology", [
    ((2, 2), torus2d(2, 2)),
    ((2, 4), torus2d(2, 4)),
    ((1, 2), torus2d(2, 2)),
])
def test_distributed_matches_reference(rank_grid, topology):
    grid = _grid(24, 32, seed=1)
    out, _us = run_distributed_sim(grid, 4, rank_grid, topology=topology)
    ref = jacobi_reference(grid, 4)
    np.testing.assert_allclose(out.astype(np.float64), ref, atol=1e-5)


def test_single_timestep():
    grid = _grid(16, 16, seed=2)
    out, _us = run_distributed_sim(grid, 1, (2, 2), topology=torus2d(2, 2))
    np.testing.assert_allclose(out.astype(np.float64),
                               jacobi_reference(grid, 1), atol=1e-6)


def test_uneven_block_sizes():
    # 21 x 19 over a 2x2 rank grid: blocks of 11/10 x 10/9 rows/cols.
    grid = _grid(21, 19, seed=3)
    out, _us = run_distributed_sim(grid, 3, (2, 2), topology=torus2d(2, 2))
    np.testing.assert_allclose(out.astype(np.float64),
                               jacobi_reference(grid, 3), atol=1e-5)


@settings(deadline=None, max_examples=6)
@given(
    nx=st.integers(min_value=8, max_value=28),
    ny=st.integers(min_value=8, max_value=28),
    steps=st.integers(min_value=1, max_value=5),
    seed=st.integers(0, 500),
)
def test_property_any_grid_matches_reference(nx, ny, steps, seed):
    """Property: the SMI halo-exchange stencil equals sequential Jacobi for
    arbitrary grid shapes, timestep counts and data."""
    grid = _grid(nx, ny, seed=seed)
    out, _us = run_distributed_sim(grid, steps, (2, 2), topology=torus2d(2, 2))
    ref = jacobi_reference(grid, steps)
    np.testing.assert_allclose(out.astype(np.float64), ref, atol=1e-4)


def test_more_ranks_than_rows_rejected():
    with pytest.raises(ConfigurationError):
        run_distributed_sim(_grid(2, 16), 1, (4, 1), topology=torus2d(2, 2))


def test_too_small_topology_rejected():
    with pytest.raises(ConfigurationError, match="topology"):
        run_distributed_sim(_grid(16, 16), 1, (2, 4), topology=torus2d(2, 2))


# ----------------------------------------------------------------------
# Flow model (Figs. 15-16)
# ----------------------------------------------------------------------
def test_model_fig15_all_points():
    model = StencilModel()
    expected = {
        "1 bank/1 FPGA": 254.0,
        "4 banks/1 FPGA": 72.0,
        "1 bank/4 FPGAs": 72.0,
        "4 banks/4 FPGAs": 20.0,
        "4 banks/8 FPGAs": 11.0,
    }
    for p in FIG15_POINTS:
        t_ms = model.time_s(4096, 4096, 32, p.banks, p.num_fpgas, p.rank_grid) * 1e3
        assert t_ms == pytest.approx(expected[p.label], rel=0.1), p.label


def test_model_speedup_product_structure():
    # §5.4.2: banks-speedup x fpga-speedup composes multiplicatively.
    model = StencilModel()
    base = model.time_s(4096, 4096, 32, 1, 1, (1, 1))
    s_banks = base / model.time_s(4096, 4096, 32, 4, 1, (1, 1))
    s_fpgas = base / model.time_s(4096, 4096, 32, 1, 4, (2, 2))
    s_both = base / model.time_s(4096, 4096, 32, 4, 4, (2, 2))
    assert s_both == pytest.approx(s_banks * s_fpgas, rel=0.1)


def test_model_rank_grid_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        StencilModel().time_s(4096, 4096, 32, 4, 8, (2, 2))


def test_model_halo_elements():
    model = StencilModel()
    # Interior rank of a 2x2 grid: two row edges + two column edges.
    assert model.halo_elements(100, 200, (2, 2)) == 2 * 200 + 2 * 100
    # 1-D decomposition: only one direction pair exchanges.
    assert model.halo_elements(100, 200, (1, 4)) == 2 * 100
    assert model.halo_elements(100, 200, (4, 1)) == 2 * 200


def test_model_weak_scaling_monotone():
    model = StencilModel()
    values = [
        model.ns_per_point(s, s, 32, 4, 8, (2, 4))
        for s in (1024, 2048, 4096, 8192)
    ]
    assert values == sorted(values, reverse=True)


def test_model_overlap_inequality_matches_paper_form():
    # LHS grows quadratically, RHS linearly: large grids always overlap.
    model = StencilModel()
    assert model.communication_overlapped(16384, 16384, 4, (2, 4))
    assert not model.communication_overlapped(48, 48, 4, (2, 4))


def test_jacobi_reference_fixed_point():
    # A constant grid is a fixed point of the Jacobi update.
    grid = np.full((12, 12), 3.5, dtype=np.float32)
    np.testing.assert_allclose(jacobi_reference(grid, 10), grid)
