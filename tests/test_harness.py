"""Tests for the benchmark harness: reporting, paper data, runners, CLI."""

import math

import pytest

from repro.harness import (
    Comparison,
    SweepPoint,
    bandwidth_sweep,
    collective_sweep,
    format_table,
    host_bandwidth_sweep,
    host_collective_sweep,
    paperdata,
)
from repro.harness.cli import EXPERIMENTS, main as cli_main
from repro.network.topology import noctua_torus


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 2.5], [333, "x"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "bb" in lines[2]
    # All data rows have the same width.
    widths = {len(line) for line in lines[2:]}
    assert len(widths) == 1


def test_format_table_number_formatting():
    text = format_table(["v"], [[1234567.0], [0.123456], [12.3456], [0]])
    assert "1,234,567" in text
    assert "0.123" in text
    assert "12.3" in text


def test_comparison_ratios():
    cmp = Comparison("t", "us")
    cmp.add("a", 10.0, 20.0)
    cmp.add("b", 5.0, 5.0)
    cmp.add("c", "n/a", 1.0)
    rows = cmp.ratio_rows()
    assert rows[0][3] == "2.00x"
    assert rows[1][3] == "1.00x"
    assert rows[2][3] == "-"
    assert cmp.max_abs_log_ratio() == pytest.approx(1.0)  # log2(2)


def test_comparison_render_contains_units():
    cmp = Comparison("Latency", "us")
    cmp.add("x", 1.0, 1.1)
    text = cmp.render()
    assert "paper [us]" in text and "measured [us]" in text


# ----------------------------------------------------------------------
# Paper data integrity
# ----------------------------------------------------------------------
def test_paperdata_table3_values():
    assert paperdata.TABLE3_LATENCY_US["SMI-1"] == 0.801
    assert paperdata.TABLE3_LATENCY_US["MPI+OpenCL"] == 36.61


def test_paperdata_fig15_consistency():
    # Speedups and times must be mutually consistent (t0 / t = speedup).
    base = paperdata.FIG15_STRONG_SCALING["1 bank/1 FPGA"]["time_ms"]
    for label, row in paperdata.FIG15_STRONG_SCALING.items():
        implied = base / row["time_ms"]
        assert implied == pytest.approx(row["speedup"], rel=0.15), label


def test_paperdata_fig9_peaks():
    assert paperdata.FIG9_PAYLOAD_PEAK_GBITS == pytest.approx(
        paperdata.FIG9_QSFP_PEAK_GBITS * 28 / 32
    )
    assert paperdata.FIG9_SMI_PLATEAU_GBITS == pytest.approx(31.85)


def test_paperdata_fig16_8ranks_faster():
    for size in paperdata.FIG16_GRID_SIZES:
        assert (paperdata.FIG16_NS_PER_POINT_8RANKS[size]
                < paperdata.FIG16_NS_PER_POINT_4RANKS[size])


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------
def test_bandwidth_sweep_marks_sources():
    points = bandwidth_sweep([1024, 1 << 22], hops=1,
                             sim_limit_elements=1024)
    assert points[0].source == "sim"
    assert points[1].source == "model"
    assert points[1].value > points[0].value


def test_host_bandwidth_sweep_monotone():
    points = host_bandwidth_sweep([2**k for k in range(10, 24, 4)])
    values = [p.value for p in points]
    assert values == sorted(values)
    assert all(p.source == "host-model" for p in points)


def test_collective_sweep_sim_and_model_continuity():
    """Sim and model points on either side of the threshold must line up
    (no discontinuity in the published curves)."""
    top = noctua_torus()
    sizes = [2048, 4096]
    sim_pts = collective_sweep("bcast", sizes, top, 8,
                               sim_limit_elements=1 << 20)
    model_pts = collective_sweep("bcast", sizes, top, 8,
                                 sim_limit_elements=0)
    for s, m in zip(sim_pts, model_pts):
        assert m.value == pytest.approx(s.value, rel=0.3), (s, m)


def test_collective_sweep_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown collective"):
        collective_sweep("alltoall", [4], noctua_torus(), 8)


def test_host_collective_sweep_kinds():
    b = host_collective_sweep("bcast", [1024], 8)[0].value
    r = host_collective_sweep("reduce", [1024], 8)[0].value
    assert r >= b  # reduce adds combine time


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_lists_every_experiment():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "table3", "table4",
        "fig9", "fig10", "fig11", "fig13", "fig15", "fig16",
    }


def test_cli_runs_fast_experiments(capsys):
    assert cli_main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert cli_main(["fig16"]) == 0
    out = capsys.readouterr().out
    assert "weak scaling" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        cli_main(["fig99"])


def test_cli_macro_cruise_round_trip(monkeypatch, capsys):
    """--macro-cruise reaches the runners' config via REPRO_MACRO_CRUISE."""
    import os

    from repro.harness.runners import default_config

    monkeypatch.delenv("REPRO_MACRO_CRUISE", raising=False)
    assert default_config().macro_cruise is False
    assert cli_main(["table1", "--macro-cruise"]) == 0
    capsys.readouterr()
    assert os.environ["REPRO_MACRO_CRUISE"] == "1"
    cfg = default_config()
    assert cfg.macro_cruise
    # The full gate chain rides along: macro-cruise implies cruise
    # induction implies pattern replication implies burst mode.
    assert cfg.cruise_induction and cfg.pattern_replication and cfg.burst_mode
    monkeypatch.setenv("REPRO_MACRO_CRUISE", "0")
    assert default_config().macro_cruise is False
