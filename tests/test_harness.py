"""Tests for the benchmark harness: reporting, paper data, runners, CLI."""

import math
import re

import pytest

from repro.harness import (
    Comparison,
    SweepPoint,
    bandwidth_sweep,
    collective_sweep,
    format_table,
    host_bandwidth_sweep,
    host_collective_sweep,
    paperdata,
)
from repro.harness.cli import EXPERIMENTS, main as cli_main
from repro.network.topology import noctua_torus


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 2.5], [333, "x"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "bb" in lines[2]
    # All data rows have the same width.
    widths = {len(line) for line in lines[2:]}
    assert len(widths) == 1


def test_format_table_number_formatting():
    text = format_table(["v"], [[1234567.0], [0.123456], [12.3456], [0]])
    assert "1,234,567" in text
    assert "0.123" in text
    assert "12.3" in text


def test_comparison_ratios():
    cmp = Comparison("t", "us")
    cmp.add("a", 10.0, 20.0)
    cmp.add("b", 5.0, 5.0)
    cmp.add("c", "n/a", 1.0)
    rows = cmp.ratio_rows()
    assert rows[0][3] == "2.00x"
    assert rows[1][3] == "1.00x"
    assert rows[2][3] == "-"
    assert cmp.max_abs_log_ratio() == pytest.approx(1.0)  # log2(2)


def test_comparison_render_contains_units():
    cmp = Comparison("Latency", "us")
    cmp.add("x", 1.0, 1.1)
    text = cmp.render()
    assert "paper [us]" in text and "measured [us]" in text


def test_planner_summary_renders_macro_segment():
    from repro.harness import planner_summary
    from repro.simulation.stats import PlannerStats

    stats = PlannerStats(ff_windows=1, ff_cycles=5000, ff_bulk_rounds=420,
                         ff_jumps=2, ff_chain_hops=16)
    line = planner_summary(stats)
    assert "macro: 2 jumps x 8.0 relay sessions" in line
    assert "420 bulk rounds over 5,000cy" in line
    # Runs that never fast-forwarded stay silent about macro.
    assert "macro" not in planner_summary(PlannerStats())


def test_shard_timing_summary_survives_empty_and_partial_entries():
    """Aborted workers report no timing dict (or a partial one with
    ``None`` phase values); the table renders placeholder rows and
    zeroes instead of crashing or emitting NaN."""
    from repro.harness.reporting import shard_timing_summary

    assert "n/a" in shard_timing_summary([])
    text = shard_timing_summary([
        None,
        {},
        {"compute_s": None, "serialize_s": None, "ipc_wait_s": None,
         "inner_rounds": None, "outer_rounds": None},
        {"compute_s": 0.5, "serialize_s": 0.125, "ipc_wait_s": 0.25,
         "inner_rounds": 12, "outer_rounds": 3},
    ])
    lines = text.splitlines()
    row = {m.group(0): line for line in lines
           if (m := re.match(r"shard \d+", line))}
    assert set(row) == {"shard 0", "shard 1", "shard 2", "shard 3"}
    for aborted in ("shard 0", "shard 1"):
        assert row[aborted].count("-") >= 5, row[aborted]
    # None phase values count as zero, never NaN.
    assert "0.0" in row["shard 2"] and "nan" not in text.lower()
    assert "500.0" in row["shard 3"] and "125.0" in row["shard 3"]


# ----------------------------------------------------------------------
# Paper data integrity
# ----------------------------------------------------------------------
def test_paperdata_table3_values():
    assert paperdata.TABLE3_LATENCY_US["SMI-1"] == 0.801
    assert paperdata.TABLE3_LATENCY_US["MPI+OpenCL"] == 36.61


def test_paperdata_fig15_consistency():
    # Speedups and times must be mutually consistent (t0 / t = speedup).
    base = paperdata.FIG15_STRONG_SCALING["1 bank/1 FPGA"]["time_ms"]
    for label, row in paperdata.FIG15_STRONG_SCALING.items():
        implied = base / row["time_ms"]
        assert implied == pytest.approx(row["speedup"], rel=0.15), label


def test_paperdata_fig9_peaks():
    assert paperdata.FIG9_PAYLOAD_PEAK_GBITS == pytest.approx(
        paperdata.FIG9_QSFP_PEAK_GBITS * 28 / 32
    )
    assert paperdata.FIG9_SMI_PLATEAU_GBITS == pytest.approx(31.85)


def test_paperdata_fig16_8ranks_faster():
    for size in paperdata.FIG16_GRID_SIZES:
        assert (paperdata.FIG16_NS_PER_POINT_8RANKS[size]
                < paperdata.FIG16_NS_PER_POINT_4RANKS[size])


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------
def test_bandwidth_sweep_marks_sources():
    points = bandwidth_sweep([1024, 1 << 22], hops=1,
                             sim_limit_elements=1024)
    assert points[0].source == "sim"
    assert points[1].source == "model"
    assert points[1].value > points[0].value


def test_host_bandwidth_sweep_monotone():
    points = host_bandwidth_sweep([2**k for k in range(10, 24, 4)])
    values = [p.value for p in points]
    assert values == sorted(values)
    assert all(p.source == "host-model" for p in points)


def test_collective_sweep_sim_and_model_continuity():
    """Sim and model points on either side of the threshold must line up
    (no discontinuity in the published curves)."""
    top = noctua_torus()
    sizes = [2048, 4096]
    sim_pts = collective_sweep("bcast", sizes, top, 8,
                               sim_limit_elements=1 << 20)
    model_pts = collective_sweep("bcast", sizes, top, 8,
                                 sim_limit_elements=0)
    for s, m in zip(sim_pts, model_pts):
        assert m.value == pytest.approx(s.value, rel=0.3), (s, m)


def test_collective_sweep_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown collective"):
        collective_sweep("alltoall", [4], noctua_torus(), 8)


def test_host_collective_sweep_kinds():
    b = host_collective_sweep("bcast", [1024], 8)[0].value
    r = host_collective_sweep("reduce", [1024], 8)[0].value
    assert r >= b  # reduce adds combine time


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_lists_every_experiment():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "table3", "table4",
        "fig9", "fig10", "fig11", "fig13", "fig15", "fig16",
    }


def test_cli_runs_fast_experiments(capsys):
    assert cli_main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert cli_main(["fig16"]) == 0
    out = capsys.readouterr().out
    assert "weak scaling" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        cli_main(["fig99"])


def test_cli_macro_cruise_round_trip(monkeypatch, capsys):
    """--macro-cruise reaches the runners' config via REPRO_MACRO_CRUISE."""
    import os

    from repro.harness.runners import default_config

    monkeypatch.delenv("REPRO_MACRO_CRUISE", raising=False)
    assert default_config().macro_cruise is False
    assert cli_main(["table1", "--macro-cruise"]) == 0
    capsys.readouterr()
    assert os.environ["REPRO_MACRO_CRUISE"] == "1"
    cfg = default_config()
    assert cfg.macro_cruise
    # The full gate chain rides along: macro-cruise implies cruise
    # induction implies pattern replication implies burst mode.
    assert cfg.cruise_induction and cfg.pattern_replication and cfg.burst_mode
    monkeypatch.setenv("REPRO_MACRO_CRUISE", "0")
    assert default_config().macro_cruise is False


def test_cli_macro_cruise_cleared_without_flag(monkeypatch, capsys):
    """Two-way plumbing: a stale ``REPRO_MACRO_CRUISE=1`` from an earlier
    in-process invocation must not leak into a later one that did not
    pass ``--macro-cruise`` — the CLI writes "0" explicitly."""
    import os

    from repro.harness.runners import default_config

    monkeypatch.setenv("REPRO_MACRO_CRUISE", "1")
    assert cli_main(["table1"]) == 0
    capsys.readouterr()
    assert os.environ["REPRO_MACRO_CRUISE"] == "0"
    assert default_config().macro_cruise is False


def test_macro_cruise_env_falsy_spellings_are_off(monkeypatch):
    """The runners treat ""/"0"/"false"/"no" as off, not merely unset."""
    from repro.harness.runners import default_config

    for value in ("", "0", "false", "no"):
        monkeypatch.setenv("REPRO_MACRO_CRUISE", value)
        assert default_config().macro_cruise is False, repr(value)
    monkeypatch.setenv("REPRO_MACRO_CRUISE", "1")
    assert default_config().macro_cruise is True
