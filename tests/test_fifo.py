"""Unit tests for registered FIFO semantics (the hardware handoff model)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.simulation import TICK, Engine, WaitCycles


def test_item_visible_one_cycle_after_stage():
    eng = Engine()
    f = eng.fifo("f", capacity=4)
    observations = []

    def producer():
        f.stage("a")  # staged at cycle 0
        yield TICK

    def observer():
        observations.append((eng.cycle, f.readable))  # cycle 0: not yet
        yield TICK
        observations.append((eng.cycle, f.readable))  # cycle 1: visible
        yield TICK

    eng.spawn(producer, "p")
    eng.spawn(observer, "o")
    eng.run()
    assert observations == [(0, False), (1, True)]


def test_latency_parameter_delays_visibility():
    eng = Engine()
    f = eng.fifo("link", capacity=16, latency=10)
    arrival = []

    def producer():
        f.stage("pkt")
        yield TICK

    def consumer():
        item = yield from f.pop()
        arrival.append((eng.cycle, item))

    eng.spawn(producer, "p")
    eng.spawn(consumer, "c")
    eng.run()
    # Staged at cycle 0, visible at 10, pop consumes a cycle -> done at 11.
    assert arrival == [(11, "pkt")]


def test_throughput_one_item_per_cycle():
    # A FIFO with sufficient capacity sustains 1 item/cycle.
    eng = Engine()
    f = eng.fifo("f", capacity=8)
    n = 100
    done = {}

    def producer():
        yield from f.push_many(range(n))
        done["push_end"] = eng.cycle

    def consumer():
        yield from f.pop_many(n)
        done["pop_end"] = eng.cycle

    eng.spawn(producer, "p")
    eng.spawn(consumer, "c")
    eng.run()
    # Producer: one push per cycle -> finishes at cycle n.
    assert done["push_end"] == n
    # Consumer trails by the 1-cycle handoff.
    assert done["pop_end"] <= n + 2


def test_backpressure_blocks_producer():
    eng = Engine()
    f = eng.fifo("tiny", capacity=2)
    push_times = []

    def producer():
        for i in range(6):
            while not f.writable:
                yield f.can_push
            f.stage(i)
            push_times.append(eng.cycle)
            yield TICK

    def slow_consumer():
        for _ in range(6):
            yield WaitCycles(10)
            while not f.readable:
                yield f.can_pop
            f.take()

    eng.spawn(producer, "p")
    eng.spawn(slow_consumer, "c")
    eng.run()
    # First two pushes are back-to-back; the rest are paced by the consumer.
    assert push_times[0] == 0 and push_times[1] == 1
    gaps = [b - a for a, b in zip(push_times[2:], push_times[3:])]
    assert all(g >= 9 for g in gaps)


def test_capacity_counts_staged_items():
    eng = Engine()
    f = eng.fifo("f", capacity=2)

    def proc():
        assert f.writable
        f.stage(1)
        assert f.writable  # 1 staged, 1 free
        f.stage(2)
        assert not f.writable  # full: 2 staged
        yield TICK

    eng.spawn(proc, "p")
    eng.run()


def test_stage_while_full_raises():
    eng = Engine()
    f = eng.fifo("f", capacity=1)

    def proc():
        f.stage(1)
        with pytest.raises(SimulationError, match="while full"):
            f.stage(2)
        yield TICK

    eng.spawn(proc, "p")
    eng.run()


def test_take_while_empty_raises():
    eng = Engine()
    f = eng.fifo("f", capacity=1)

    def proc():
        with pytest.raises(SimulationError, match="while empty"):
            f.take()
        yield TICK

    eng.spawn(proc, "p")
    eng.run()


def test_peek_does_not_remove():
    eng = Engine()
    f = eng.fifo("f", capacity=2)
    out = []

    def producer():
        yield from f.push("v")

    def consumer():
        while not f.readable:
            yield f.can_pop
        assert f.peek() == "v"
        assert f.peek() == "v"
        out.append(f.take())
        yield TICK

    eng.spawn(producer, "p")
    eng.spawn(consumer, "c")
    eng.run()
    assert out == ["v"]


def test_invalid_construction():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.fifo("bad", capacity=0)
    with pytest.raises(SimulationError):
        eng.fifo("bad", capacity=1, latency=0)


def test_drain_returns_everything_in_order():
    eng = Engine()
    f = eng.fifo("f", capacity=8)

    def proc():
        for i in range(3):
            f.stage(i)
        yield TICK
        yield TICK
        f.stage(99)  # still staged when we drain
        yield TICK

    eng.spawn(proc, "p")
    eng.run()
    assert f.drain() == [0, 1, 2, 99]
    assert not f.readable


@settings(deadline=None, max_examples=30)
@given(
    items=st.lists(st.integers(), min_size=1, max_size=60),
    capacity=st.integers(min_value=1, max_value=8),
    latency=st.integers(min_value=1, max_value=12),
    consumer_stall=st.integers(min_value=0, max_value=3),
)
def test_fifo_preserves_order_and_loses_nothing(items, capacity, latency, consumer_stall):
    """Property: any FIFO delivers exactly the pushed sequence, in order,
    for every combination of capacity, latency and consumer pacing."""
    eng = Engine()
    f = eng.fifo("f", capacity=capacity, latency=latency)
    received = []

    def producer():
        yield from f.push_many(items)

    def consumer():
        for _ in range(len(items)):
            if consumer_stall:
                yield WaitCycles(consumer_stall)
            item = yield from f.pop()
            received.append(item)

    eng.spawn(producer, "p")
    eng.spawn(consumer, "c")
    eng.run()
    assert received == items
    assert f.pushes == len(items)
    assert f.pops == len(items)
    assert f.max_occupancy <= capacity
