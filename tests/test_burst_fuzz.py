"""Randomized cycle-equivalence fuzzing across the burst planes.

Each seeded case draws a topology span (1-6 hops on the Noctua bus), FIFO
depths (shallow through deep-buffer regimes), a polling parameter, a
workload (p2p / credited p2p / bcast / reduce / scatter / mixed
stencil+collective), and a random fabric cut, then runs it under six
data planes:

* ``flit`` — the per-flit reference interpretation (``burst_mode=False``);
* ``burst`` — window planning only (``pattern_replication=False``);
* ``replicated`` — pattern replication, no induction
  (``cruise_induction=False``);
* ``cruise`` — the full plane (replication + cruise-mode induction);
* ``macro`` — cruise plus the whole-program analytical fast-forward
  (``macro_cruise=True``): steady-state spans commit as closed-form
  Δ-shift extrapolations with no per-packet replay;
* ``sharded`` — the full plane on the sharded backend
  (:mod:`repro.shard`), partitioned by the case's randomly drawn cut (a
  random contiguous split into 2-4 shards, occasionally scrambled by
  per-rank overrides), synchronised in conservative epochs.

p2p cases additionally draw *mid-run externalities*: random (position,
wait) injections on either side of the stream that break the periodic
steady state partway through. These fuzz the fast-forward's abort
paths — a jump proven before the injection must re-arm and re-prove
after it, and a jump whose guard battery sees the perturbed backlog
must refuse (fall back to ordinary cruise) rather than extrapolate
through it.

Every plane must produce identical simulated cycles per rank and
identical per-FIFO push/pop counts and exact occupancy peaks — the same
bar ``tests/test_burst_equivalence.py`` pins on hand-picked workloads,
here swept over a randomized parameter space. ~20 seeded cases run in
tier-1; the slow-marked extended sweep honours ``--fuzz-iters`` for the
nightly CI job.
"""

import multiprocessing
import os
import random

import numpy as np
import pytest

from repro import NOCTUA, SMI_FLOAT, SMI_INT, SMIProgram, noctua_bus
from repro.codegen.metadata import OpDecl
from repro.core.ops import SMI_ADD

#: The six data planes whose cycle trajectories must coincide. The
#: ``sharded`` plane additionally sets ``backend``/``shards`` from the
#: case's drawn cut inside ``_assert_planes_agree``.
HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

PLANES = {
    "flit": dict(burst_mode=False),
    "burst": dict(pattern_replication=False),
    "replicated": dict(cruise_induction=False),
    "cruise": dict(),
    "macro": dict(macro_cruise=True),
    "sharded": dict(),
}

#: CI's slow job runs the sweep twice, with ``REPRO_MACRO_CRUISE`` off
#: and on. The ambient flag folds the fast-forward into the base config
#: of every plane — inert below ``cruise_induction`` (the gate chain
#: ignores it there), a no-op on the explicit ``macro`` plane, and new
#: coverage on ``cruise``/``sharded``: the macro path gets fuzzed under
#: sharded epoch synchronisation too.
AMBIENT_MACRO = os.environ.get("REPRO_MACRO_CRUISE", "") == "1"

#: Same ambient pattern for the flight recorder (``REPRO_TRACE=1``):
#: tracing folds into every plane's base config, and the sweep's
#: cross-plane cycle/count identity then *is* the zero-overhead
#: contract — a recorder that changed any simulated outcome would
#: diverge a plane and fail the run.
AMBIENT_TRACE = os.environ.get("REPRO_TRACE", "") == "1"


def _gen_cut(rng: random.Random, num_ranks: int = 8) -> list[list[int]]:
    """A random contiguous split of the bus ranks into 2-4 shards.

    One case in four scrambles a rank across the cut (moves it to
    another shard), exercising non-contiguous partitions where a single
    flow crosses the boundary several times.
    """
    k = rng.randint(2, 4)
    splits = sorted(rng.sample(range(1, num_ranks), k - 1))
    edges = [0] + splits + [num_ranks]
    shards = [list(range(edges[i], edges[i + 1])) for i in range(k)]
    if rng.random() < 0.25:
        src = rng.randrange(k)
        dst = rng.randrange(k)
        if src != dst and len(shards[src]) > 1:
            shards[dst].append(shards[src].pop())
    return shards


def _fifo_counts(engine):
    return {
        name: (s["pushes"], s["pops"], s["max_occupancy"])
        for name, s in engine.fifo_stats().items()
    }


def _gen_case(rng: random.Random) -> dict:
    """Draw one workload + platform configuration."""
    case = {
        "kind": rng.choice(
            ["p2p", "p2p", "credited", "bcast", "reduce", "scatter",
             "mixed"]
        ),
        "inter_ck_fifo_depth": rng.choice([2, 4, 8, 32]),
        "endpoint_fifo_depth": rng.choice([2, 8, 32]),
        "read_burst": rng.choice([1, 4, 8]),
        "cut": _gen_cut(rng),
    }
    if case["kind"] == "p2p":
        case["hops"] = rng.randint(1, 6)
        case["n"] = rng.choice([40, 136, 512, 2048])
        case["width"] = rng.choice([4, 8])
        case["declare_peer"] = rng.random() < 0.5
        case["stall"] = rng.choice([0, 0, 97])
        # Mid-run externalities: (fraction, wait, on_receiver) triples.
        # Each one breaks the stream's periodic steady state partway
        # through, forcing a macro-cruise fast-forward either to abort
        # its guard battery or to cap its jump short of the injection.
        case["inject"] = [
            (rng.random() * 0.8 + 0.1, rng.choice([13, 61, 140]),
             rng.random() < 0.5)
            for _ in range(rng.randint(0, 2))
        ]
    elif case["kind"] == "credited":
        case["hops"] = rng.randint(1, 4)
        case["n"] = rng.choice([48, 120])
        case["window"] = rng.choice([2, 4])
        case["stall"] = rng.choice([0, 150])
    elif case["kind"] in ("bcast", "reduce"):
        case["ranks"] = rng.randint(2, 4)
        case["n"] = rng.choice([16, 48])
    elif case["kind"] == "scatter":
        case["ranks"] = rng.randint(2, 4)
        case["n"] = rng.choice([12, 32])
    else:  # mixed stencil halo + bcast
        case["ranks"] = 3
        case["n_halo"] = rng.choice([40, 96])
        case["n_bcast"] = rng.choice([16, 32])
    return case


def _run_case(case: dict, config, partition=None,
              stats_out: dict | None = None) -> tuple[dict, dict]:
    """Run one case; returns (per-rank end cycles + outputs, fifo stats).

    When ``stats_out`` is given, the merged :class:`PlannerStats` of the
    run land under its ``"planner"`` key (arming assertions on the
    deterministic deep cases).
    """
    kind = case["kind"]
    prog = SMIProgram(noctua_bus(), config=config, partition=partition)
    if kind == "p2p":
        hops, n, width = case["hops"], case["n"], case["width"]
        data = np.arange(n, dtype=np.float32)
        stall = case["stall"]
        peer = dict(peer=hops) if case["declare_peer"] else {}
        rpeer = dict(peer=0) if case["declare_peer"] else {}

        # Cut points (width-aligned, interior) with their wait cycles;
        # the legacy midpoint stall folds in as one more injection.
        snd_plan = [(n // 2, stall)] if stall else []
        rcv_plan = []
        for frac, wait, on_rcv in case.get("inject", ()):
            pos = (int(frac * n) // width) * width
            if 0 < pos < n:
                (rcv_plan if on_rcv else snd_plan).append((pos, wait))
        snd_plan.sort()
        rcv_plan.sort()

        def snd(smi):
            ch = smi.open_send_channel(n, SMI_FLOAT, hops, 0)
            prev = 0
            for pos, wait in snd_plan:
                if pos > prev:
                    yield from ch.push_vec(data[prev:pos], width=width)
                    prev = pos
                yield smi.wait(wait)
            yield from ch.push_vec(data[prev:], width=width)

        def rcv(smi):
            ch = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
            out = []
            prev = 0
            for pos, wait in rcv_plan:
                if pos > prev:
                    seg = yield from ch.pop_vec(pos - prev, width=width)
                    out.extend(float(v) for v in seg)
                    prev = pos
                yield smi.wait(wait)
            seg = yield from ch.pop_vec(n - prev, width=width)
            out.extend(float(v) for v in seg)
            smi.store("out", out)
            smi.store("end", smi.cycle)

        prog.add_kernel(snd, rank=0,
                        ops=[OpDecl("send", 0, SMI_FLOAT, **peer)])
        prog.add_kernel(rcv, rank=hops,
                        ops=[OpDecl("recv", 0, SMI_FLOAT, **rpeer)])
        watch = [hops]
    elif kind == "credited":
        hops, n, window = case["hops"], case["n"], case["window"]
        stall = case["stall"]
        ops = [OpDecl("send", 0, SMI_INT), OpDecl("recv", 0, SMI_INT)]

        def sender(smi):
            ch = smi.open_credited_send_channel(n, SMI_INT, hops, 0,
                                                window_packets=window)
            for i in range(n):
                yield from smi.push(ch, i)

        def receiver(smi):
            ch = smi.open_credited_recv_channel(n, SMI_INT, 0, 0,
                                                window_packets=window)
            if stall:
                yield smi.wait(stall)
            out = []
            for _ in range(n):
                out.append(int((yield from smi.pop(ch))))
            smi.store("out", out)
            smi.store("end", smi.cycle)

        prog.add_kernel(sender, rank=0, ops=ops)
        prog.add_kernel(receiver, rank=hops, ops=ops)
        watch = [hops]
    elif kind in ("bcast", "reduce"):
        n, num_ranks = case["n"], case["ranks"]
        op = (OpDecl("reduce", 0, SMI_FLOAT, reduce_op=SMI_ADD)
              if kind == "reduce" else OpDecl("bcast", 0, SMI_FLOAT))

        def kernel(smi):
            comm = smi.comm_world.sub(list(range(num_ranks)))
            if not comm.contains(smi.rank):
                return
                yield  # pragma: no cover
            out = []
            if kind == "bcast":
                chan = smi.open_bcast_channel(n, SMI_FLOAT, 0, 0, comm)
                for i in range(n):
                    v = yield from chan.bcast(
                        float(i) if smi.rank == 0 else None)
                    out.append(float(v))
            else:
                chan = smi.open_reduce_channel(n, SMI_FLOAT, SMI_ADD,
                                               0, 0, comm)
                for i in range(n):
                    v = yield from chan.reduce(float(smi.rank + i))
                    if smi.rank == 0:
                        out.append(float(v))
            smi.store("out", out)
            smi.store("end", smi.cycle)

        prog.add_kernel(kernel, ranks="all", ops=[op])
        watch = list(range(num_ranks))
    elif kind == "scatter":
        count, num_ranks = case["n"], case["ranks"]

        def kernel(smi):
            comm = smi.comm_world.sub(list(range(num_ranks)))
            if not comm.contains(smi.rank):
                return
                yield  # pragma: no cover
            chan = smi.open_scatter_channel(count, SMI_FLOAT, 0, 0, comm)
            if smi.rank == 0:
                vals = [float(i) for i in range(count * num_ranks)]
                mine = yield from chan.stream_root(vals)
            else:
                mine = []
                for _ in range(count):
                    mine.append(float((yield from chan.pop())))
            smi.store("out", [float(v) for v in mine])
            smi.store("end", smi.cycle)

        prog.add_kernel(kernel, ranks="all",
                        ops=[OpDecl("scatter", 0, SMI_FLOAT)])
        watch = list(range(num_ranks))
    else:  # mixed: p2p halo ring + broadcast sharing the fabric
        n_halo, n_bcast = case["n_halo"], case["n_bcast"]
        num_ranks = case["ranks"]

        def kernel(smi):
            comm = smi.comm_world.sub(list(range(num_ranks)))
            if not comm.contains(smi.rank):
                return
                yield  # pragma: no cover
            right = (smi.rank + 1) % num_ranks
            left = (smi.rank - 1) % num_ranks
            data = np.full(n_halo, float(smi.rank), dtype=np.float32)

            def exchange():
                snd = smi.open_send_channel(n_halo, SMI_FLOAT, right, 1)
                yield from snd.push_vec(data, width=8)
                rcv = smi.open_recv_channel(n_halo, SMI_FLOAT, left, 1)
                halo = yield from rcv.pop_vec(n_halo, width=8)
                smi.store("halo", [float(v) for v in halo])

            smi.engine.spawn(exchange(), f"halo{smi.rank}")
            chan = smi.open_bcast_channel(n_bcast, SMI_FLOAT, 0, 0, comm)
            got = []
            for i in range(n_bcast):
                v = yield from chan.bcast(
                    float(i) if smi.rank == 0 else None)
                got.append(float(v))
            smi.store("out", got)
            smi.store("end", smi.cycle)

        prog.add_kernel(
            kernel, ranks=list(range(num_ranks)),
            ops=[OpDecl("bcast", 0, SMI_FLOAT),
                 OpDecl("send", 1, SMI_FLOAT),
                 OpDecl("recv", 1, SMI_FLOAT)])
        watch = list(range(num_ranks))

    res = prog.run(max_cycles=50_000_000)
    assert res.completed, res.reason
    if stats_out is not None:
        from repro.simulation.stats import collect_planner_stats
        stats_out["planner"] = collect_planner_stats(res.transport)
    marks = {}
    for rank in watch:
        marks[(rank, "end")] = res.store(rank, "end")
        out = res.store(rank, "out") if kind != "mixed" else (
            res.store(rank, "out"), res.store(rank, "halo"))
        marks[(rank, "out")] = out
    return marks, _fifo_counts(res.engine)


def _assert_planes_agree(case: dict) -> None:
    base = NOCTUA.with_(
        inter_ck_fifo_depth=case["inter_ck_fifo_depth"],
        endpoint_fifo_depth=case["endpoint_fifo_depth"],
        read_burst=case["read_burst"],
        macro_cruise=AMBIENT_MACRO,
        trace=AMBIENT_TRACE,
    )
    ref = None
    for plane, overrides in PLANES.items():
        partition = None
        if plane == "sharded":
            partition = case["cut"]
            overrides = dict(overrides, backend="sharded",
                             shards=len(partition))
        marks, counts = _run_case(case, base.with_(**overrides), partition)
        if ref is None:
            ref = (plane, marks, counts)
        else:
            assert marks == ref[1], (
                f"{plane} diverged from {ref[0]} on {case}"
            )
            assert counts == ref[2], (
                f"{plane} FIFO stats diverged from {ref[0]} on {case}"
            )


@pytest.mark.parametrize("seed", range(20))
def test_fuzz_cycle_equivalence_seeded(seed):
    """Tier-1: 20 fixed seeds across the generator's parameter space."""
    _assert_planes_agree(_gen_case(random.Random(seed)))


#: Deterministic deep-buffer multi-hop anchors for the 6-way plane: at
#: 32-deep FIFOs and 8k-element streams the macro plane's relay-chain
#: fast-forward demonstrably arms on 2- and 4-hop chains (the random
#: sweep's short streams rarely reach the fingerprint depth), and the
#: injected variant breaks the steady state mid-run so the armed guard
#: battery must refuse and fall back. ``arms`` pins whether the jump
#: must land (cycle-equality across all six planes is required either
#: way).
DEEP_MACRO_CASES = [
    dict(kind="p2p", hops=2, n=8192, width=8, declare_peer=True,
         stall=0, inject=[], inter_ck_fifo_depth=32,
         endpoint_fifo_depth=32, read_burst=8,
         cut=[[0, 1, 2, 3], [4, 5, 6, 7]], arms=True),
    dict(kind="p2p", hops=4, n=8192, width=8, declare_peer=True,
         stall=0, inject=[], inter_ck_fifo_depth=32,
         endpoint_fifo_depth=32, read_burst=8,
         cut=[[0, 1], [2, 3, 4], [5, 6, 7]], arms=True),
    dict(kind="p2p", hops=4, n=8192, width=8, declare_peer=True,
         stall=0, inject=[(0.5, 61, False), (0.7, 13, True)],
         inter_ck_fifo_depth=32, endpoint_fifo_depth=32, read_burst=8,
         cut=[[0, 1, 2], [3, 4, 5], [6, 7]], arms=False),
]


@pytest.mark.parametrize("idx", range(len(DEEP_MACRO_CASES)))
def test_deep_multihop_macro_planes_agree(idx):
    """Tier-1: the 6-way plane on deep multi-hop streams where the
    relay-chain fast-forward actually fires."""
    case = DEEP_MACRO_CASES[idx]
    _assert_planes_agree(case)
    if case["arms"]:
        base = NOCTUA.with_(
            inter_ck_fifo_depth=case["inter_ck_fifo_depth"],
            endpoint_fifo_depth=case["endpoint_fifo_depth"],
            read_burst=case["read_burst"],
            macro_cruise=True,
        )
        stats_out: dict = {}
        _run_case(case, base, stats_out=stats_out)
        st = stats_out["planner"]
        assert st.ff_bulk_rounds > 0, "deep case stopped arming"
        assert st.ff_jumps >= 1
        assert st.mean_ff_chain_len >= 3


@pytest.mark.slow
def test_fuzz_cycle_equivalence_extended(request):
    """Nightly: ``--fuzz-iters`` additional cases from a shifted space."""
    iters = request.config.getoption("--fuzz-iters")
    for seed in range(1000, 1000 + iters):
        _assert_planes_agree(_gen_case(random.Random(seed)))


def _assert_process_plane_agrees(case: dict, transport: str) -> None:
    """The forked-worker plane vs the in-process reference on one case."""
    base = NOCTUA.with_(
        inter_ck_fifo_depth=case["inter_ck_fifo_depth"],
        endpoint_fifo_depth=case["endpoint_fifo_depth"],
        read_burst=case["read_burst"],
        macro_cruise=AMBIENT_MACRO,
        trace=AMBIENT_TRACE,
    )
    partition = case["cut"]
    ref_marks, ref_counts = _run_case(case, base)
    marks, counts = _run_case(
        case,
        base.with_(backend="process", shards=len(partition),
                   shard_transport=transport),
        partition,
    )
    assert marks == ref_marks, f"process/{transport} diverged on {case}"
    assert counts == ref_counts, (
        f"process/{transport} FIFO stats diverged on {case}"
    )


@pytest.mark.slow
@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
@pytest.mark.parametrize("transport", ("shm", "pipe"))
def test_fuzz_process_equivalence(request, transport):
    """Nightly: forked workers over random cuts, both boundary transports.

    Fork + IPC makes each case ~10x the in-process cost, so this sweeps
    a handful of seeds per transport from its own region of seed space
    (tier-1 pins the deterministic process cases in ``test_shard.py``).
    """
    iters = min(5, request.config.getoption("--fuzz-iters"))
    start = 2000 if transport == "shm" else 2500
    for seed in range(start, start + iters):
        _assert_process_plane_agrees(_gen_case(random.Random(seed)),
                                     transport)
