"""Unit tests for reduction operators."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.core.ops import OPS, SMI_ADD, SMI_MAX, SMI_MIN, op_by_name

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)


def test_known_ops_registered():
    assert set(OPS) == {"SMI_ADD", "SMI_MAX", "SMI_MIN"}


def test_op_by_name():
    assert op_by_name("SMI_ADD") is SMI_ADD
    with pytest.raises(ConfigurationError):
        op_by_name("SMI_XOR")


@given(a=finite_floats, b=finite_floats)
def test_commutativity(a, b):
    for op in OPS.values():
        assert op.combine(a, b) == op.combine(b, a)


@given(a=finite_floats, b=finite_floats, c=finite_floats)
def test_associativity_max_min(a, b, c):
    # MAX/MIN are exactly associative (ADD only up to float rounding).
    for op in (SMI_MAX, SMI_MIN):
        assert op.combine(op.combine(a, b), c) == op.combine(a, op.combine(b, c))


@given(a=finite_floats)
def test_identity_element(a):
    for op in OPS.values():
        assert op.combine(a, op.identity) == a


def test_identity_array_float():
    arr = SMI_ADD.identity_array(4, np.float32)
    assert arr.dtype == np.float32
    assert np.all(arr == 0.0)
    arr = SMI_MAX.identity_array(3, np.float64)
    assert np.all(np.isneginf(arr))


def test_identity_array_integer_clamps_infinity():
    # Integer buffers cannot hold inf; the op substitutes the dtype extreme.
    arr = SMI_MAX.identity_array(2, np.int32)
    assert arr.dtype == np.int32
    assert np.all(arr == np.iinfo(np.int32).min)
    arr = SMI_MIN.identity_array(2, np.int32)
    assert np.all(arr == np.iinfo(np.int32).max)


def test_reduce_many_matches_numpy():
    rng = np.random.default_rng(7)
    contribs = [rng.normal(size=16).astype(np.float64) for _ in range(5)]
    np.testing.assert_allclose(
        SMI_ADD.reduce_many(contribs), np.sum(contribs, axis=0), rtol=1e-12
    )
    np.testing.assert_array_equal(
        SMI_MAX.reduce_many(contribs), np.max(contribs, axis=0)
    )
    np.testing.assert_array_equal(
        SMI_MIN.reduce_many(contribs), np.min(contribs, axis=0)
    )


def test_reduce_many_rejects_empty():
    with pytest.raises(ConfigurationError):
        SMI_ADD.reduce_many([])


def test_reduce_many_single_contribution_is_copy():
    a = np.ones(4)
    out = SMI_ADD.reduce_many([a])
    out[0] = 99
    assert a[0] == 1.0
