"""Unit tests for transport internals: CK routing decisions, builder wiring,
link pacing, and misrouting diagnostics."""

import numpy as np
import pytest

from repro import NOCTUA, SMI_ADD, SMI_FLOAT, SMI_INT, bus, noctua_torus
from repro.codegen.metadata import OpDecl, ProgramPlan
from repro.core.errors import RoutingError, SimulationError
from repro.network.fabric import Fabric
from repro.network.link import Link
from repro.network.packet import OpType, Packet
from repro.network.routing import compute_routes
from repro.simulation import TICK, Engine, WaitCycles
from repro.transport.builder import build_transport


# ----------------------------------------------------------------------
# Link pacing
# ----------------------------------------------------------------------
def test_link_enforces_cycles_per_packet():
    eng = Engine()
    link = Link(eng, (0, 0), (1, 0), latency_cycles=10, cycles_per_packet=2)
    times = []

    def producer():
        for i in range(10):
            while not link.writable:
                yield link.wait_writable()
            link.stage(Packet(src=0, dst=1, port=0))
            times.append(eng.cycle)
            yield TICK

    def consumer():
        for _ in range(10):
            while not link.readable:
                yield link.wait_readable()
            link.take()
            yield TICK

    eng.spawn(producer, "p")
    eng.spawn(consumer, "c")
    eng.run()
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g >= 2 for g in gaps), gaps


def test_link_stage_while_busy_raises():
    eng = Engine()
    link = Link(eng, (0, 0), (1, 0), latency_cycles=5, cycles_per_packet=2)

    def proc():
        link.stage(Packet(src=0, dst=1, port=0))
        with pytest.raises(SimulationError, match="busy or full"):
            link.stage(Packet(src=0, dst=1, port=0))
        yield TICK

    eng.spawn(proc, "p")
    eng.run()


def test_link_raw_rate_matches_config():
    # 1 packet / 2 cycles at 312.5 MHz == 40 Gbit/s raw.
    assert NOCTUA.link_raw_bandwidth_bps == pytest.approx(40e9)
    assert NOCTUA.link_payload_bandwidth_bps == pytest.approx(35e9)


def test_link_validate_wire_mode_roundtrips():
    eng = Engine()
    link = Link(eng, (0, 0), (1, 0), latency_cycles=3, cycles_per_packet=1,
                validate=True)
    got = []

    def producer():
        payload = np.array([1, 2, 3], dtype=np.int32)
        pkt = Packet(src=0, dst=1, port=5, op=OpType.DATA, count=3,
                     payload=payload, dtype=SMI_INT)
        while not link.writable:
            yield link.wait_writable()
        link.stage(pkt)
        yield TICK

    def consumer():
        while not link.readable:
            yield link.wait_readable()
        got.append(link.take())
        yield TICK

    eng.spawn(producer, "p")
    eng.spawn(consumer, "c")
    eng.run()
    assert got[0].port == 5


def test_link_utilization_counts_slots():
    eng = Engine()
    link = Link(eng, (0, 0), (1, 0), latency_cycles=2, cycles_per_packet=2)

    def producer():
        for _ in range(5):
            while not link.writable:
                yield link.wait_writable()
            link.stage(Packet(src=0, dst=1, port=0))
            yield TICK

    def consumer():
        for _ in range(5):
            while not link.readable:
                yield link.wait_readable()
            link.take()
            yield TICK

    eng.spawn(producer, "p")
    eng.spawn(consumer, "c")
    eng.run()
    assert link.packets == 5
    assert 0 < link.utilization(eng.cycle) <= 1.0


# ----------------------------------------------------------------------
# Fabric wiring
# ----------------------------------------------------------------------
def test_fabric_creates_two_directed_links_per_cable():
    eng = Engine()
    fabric = Fabric(eng, bus(3), NOCTUA)
    assert len(fabric.links()) == 4  # 2 cables x 2 directions
    out01 = fabric.outgoing(0, 1)
    in10 = fabric.incoming(1, 0)
    assert out01 is in10  # same directed link object
    assert fabric.outgoing(0, 0) is None  # unwired port


def test_fabric_rejects_topology_wider_than_platform():
    eng = Engine()
    cfg = NOCTUA.with_(num_interfaces=2)
    with pytest.raises(Exception, match="interfaces"):
        Fabric(eng, noctua_torus(), cfg)


# ----------------------------------------------------------------------
# Builder wiring
# ----------------------------------------------------------------------
def _build(topology, plan, config=NOCTUA):
    eng = Engine()
    routes = compute_routes(topology)
    transport = build_transport(eng, plan, routes, config)
    return eng, transport


def test_builder_instantiates_pairs_for_wired_interfaces_only():
    plan = ProgramPlan(8)
    plan.add(0, OpDecl("send", 0, SMI_INT))
    # Bus endpoints have 1 wired interface, interior ranks 2, torus 4.
    eng, transport = _build(bus(8), plan)
    assert len(transport.rank(0).cks) == 1
    assert len(transport.rank(3).cks) == 2
    eng, transport = _build(noctua_torus(), plan)
    assert len(transport.rank(0).cks) == 4
    assert len(transport.rank(0).ckr) == 4


def test_builder_round_robin_port_assignment():
    plan = ProgramPlan(8)
    for port in range(8):
        plan.add(0, OpDecl("send", port, SMI_INT))
    eng, transport = _build(noctua_torus(), plan)
    rt = transport.rank(0)
    # 8 ports over 4 interfaces: 2 each, deterministic round robin.
    by_iface: dict[int, int] = {}
    for port, iface in rt.iface_of_port.items():
        by_iface[iface] = by_iface.get(iface, 0) + 1
    assert all(count == 2 for count in by_iface.values())


def test_builder_endpoint_depth_override():
    plan = ProgramPlan(2)
    plan.add(0, OpDecl("send", 0, SMI_INT, buffer_depth=32))
    plan.add(0, OpDecl("send", 1, SMI_INT))
    eng, transport = _build(bus(2), plan)
    rt = transport.rank(0)
    lat = NOCTUA.endpoint_latency_cycles
    assert rt.send_endpoints[0].capacity == 32 + lat
    assert rt.send_endpoints[1].capacity == NOCTUA.endpoint_fifo_depth + lat


def test_builder_rejects_plan_larger_than_topology():
    plan = ProgramPlan(4)
    plan.add(3, OpDecl("send", 0, SMI_INT))
    eng = Engine()
    routes = compute_routes(bus(2))
    with pytest.raises(Exception, match="topology"):
        build_transport(eng, plan, routes, NOCTUA)


def test_builder_collective_gets_both_endpoints_and_kernel():
    plan = ProgramPlan(4)
    for rank in range(4):
        plan.add(rank, OpDecl("reduce", 3, SMI_FLOAT, reduce_op=SMI_ADD))
    from repro.network.topology import torus2d

    eng, transport = _build(torus2d(2, 2), plan)
    rt = transport.rank(2)
    assert 3 in rt.send_endpoints
    assert 3 in rt.recv_endpoints
    assert rt.support_kernels[3].kind == "reduce"
    assert 3 in rt.coll_app_in and 3 in rt.coll_app_out


def test_undeclared_endpoint_lookup_raises():
    plan = ProgramPlan(2)
    plan.add(0, OpDecl("send", 0, SMI_INT))
    eng, transport = _build(bus(2), plan)
    with pytest.raises(Exception, match="port 5"):
        transport.rank(0).send_endpoint(5)
    with pytest.raises(Exception, match="receive endpoint"):
        transport.rank(0).recv_endpoint(0)


# ----------------------------------------------------------------------
# Misrouting diagnostics (CKR rejects unknown ports)
# ----------------------------------------------------------------------
def test_packet_for_undeclared_port_raises_routing_error():
    plan = ProgramPlan(2)
    plan.add(0, OpDecl("send", 0, SMI_INT))
    plan.add(1, OpDecl("recv", 0, SMI_INT))
    eng = Engine()
    routes = compute_routes(bus(2))
    transport = build_transport(eng, plan, routes, NOCTUA)

    def rogue_sender():
        # Inject a packet for port 9, which rank 1 never declared.
        ep = transport.rank(0).send_endpoints[0]
        pkt = Packet(src=0, dst=1, port=9)
        while not ep.writable:
            yield ep.can_push
        ep.stage(pkt)
        yield TICK
        yield WaitCycles(2000)

    eng.spawn(rogue_sender, "rogue")
    with pytest.raises(RoutingError, match="unknown port 9"):
        eng.run()


def test_intermediate_hop_forwards_foreign_packets():
    """A rank with no declared ops still forwards through-traffic (§4.3:
    'a rank is reachable from all others')."""
    plan = ProgramPlan(3)
    plan.add(0, OpDecl("send", 0, SMI_INT))
    plan.add(2, OpDecl("recv", 0, SMI_INT))
    # Rank 1 has no ops at all, yet sits on the only path 0 -> 2.
    eng = Engine()
    routes = compute_routes(bus(3))
    transport = build_transport(eng, plan, routes, NOCTUA)
    from repro.core.comm import SMIComm
    from repro.core.context import SMIContext

    stores: dict = {}
    ctx0 = SMIContext(0, transport.rank(0), NOCTUA, eng, SMIComm.world(3), stores)
    ctx2 = SMIContext(2, transport.rank(2), NOCTUA, eng, SMIComm.world(3), stores)

    def sender(smi):
        ch = smi.open_send_channel(8, SMI_INT, 2, 0)
        for i in range(8):
            yield from smi.push(ch, i)

    def receiver(smi):
        ch = smi.open_recv_channel(8, SMI_INT, 0, 0)
        out = []
        for _ in range(8):
            v = yield from smi.pop(ch)
            out.append(int(v))
        smi.store("out", out)

    eng.spawn(sender(ctx0), "s")
    eng.spawn(receiver(ctx2), "r")
    assert eng.run(max_cycles=100_000).completed
    assert stores[(2, "out")] == list(range(8))


def test_isolated_rank_gets_loopback_pair():
    """A rank with no wired interfaces still gets one CKS/CKR pair so
    self-sends work."""
    from repro.network.topology import Topology, Connection

    top = Topology(3, [Connection((0, 0), (1, 0))])  # rank 2 unwired
    plan = ProgramPlan(3)
    plan.add(2, OpDecl("send", 0, SMI_INT))
    plan.add(2, OpDecl("recv", 0, SMI_INT))
    eng = Engine()
    # Routing would fail all-pairs; build tables only for ranks 0/1 via a
    # connected subtopology, then check rank 2's loopback transport.
    routes = compute_routes(Topology(3, [Connection((0, 0), (1, 0)),
                                         Connection((1, 1), (2, 0))]))
    transport = build_transport(eng, plan, routes, NOCTUA)
    rt = transport.rank(2)
    assert list(rt.cks) == [0]

    from repro.core.comm import SMIComm
    from repro.core.context import SMIContext

    stores: dict = {}
    ctx = SMIContext(2, rt, NOCTUA, eng, SMIComm.world(3), stores)

    def kernel(smi):
        s = smi.open_send_channel(5, SMI_INT, 2, 0)
        r = smi.open_recv_channel(5, SMI_INT, 2, 0)
        for i in range(5):
            yield from smi.push(s, i * 7)
        out = []
        for _ in range(5):
            v = yield from smi.pop(r)
            out.append(int(v))
        smi.store("loop", out)

    eng.spawn(kernel(ctx), "k")
    assert eng.run(max_cycles=100_000).completed
    assert stores[(2, "loop")] == [0, 7, 14, 21, 28]
