"""Unit tests for the supply-schedule planner subsystem.

Covers the contract primitives (producer registration, sleep horizons,
process floors, exact occupancy) and the cascade behaviours (co-planning
across CK boundaries, planner statistics on real transports). The
cycle-exactness of everything the planner commits is enforced separately
by ``tests/test_burst_equivalence.py``.
"""

import numpy as np
import pytest

from repro import NOCTUA, SMI_FLOAT, SMIProgram, bus, noctua_bus
from repro.codegen.metadata import OpDecl
from repro.core.ops import SMI_ADD
from repro.simulation import Engine, TICK, WaitCycles
from repro.simulation.engine import FOREVER
from repro.simulation.stats import (
    GapHistogram,
    PlannerStats,
    collect_planner_stats,
)


# ----------------------------------------------------------------------
# Supply horizons and process floors
# ----------------------------------------------------------------------
def test_supply_horizon_unregistered_is_handoff_latency():
    eng = Engine()
    f = eng.fifo("f", capacity=4, latency=3)
    assert f.supply_horizon() == eng.cycle + 3


def test_supply_horizon_flow_dead_is_forever():
    eng = Engine()
    f = eng.fifo("f", capacity=4)
    f.flow_dead = True
    assert f.supply_horizon() == FOREVER


def test_supply_horizon_sleeping_producer():
    """A producer sleeping on WaitCycles provably stages nothing before
    its wake, so the horizon is its wake cycle plus the FIFO latency."""
    eng = Engine()
    f = eng.fifo("f", capacity=4, latency=2)

    def producer():
        yield WaitCycles(100)
        f.stage("late")
        yield TICK

    proc = eng.spawn(producer(), "producer")
    f.register_producer(proc)

    horizons = {}

    def observer():
        yield TICK  # let the producer enter its sleep
        horizons["at1"] = f.supply_horizon()

    eng.spawn(observer(), "observer")
    eng.run()
    assert horizons["at1"] == 100 + 2


def test_supply_horizon_finished_producer_is_forever():
    eng = Engine()
    f = eng.fifo("f", capacity=4)

    def producer():
        f.stage("only")
        yield TICK

    proc = eng.spawn(producer(), "producer")
    f.register_producer(proc)
    marks = {}

    def consumer():
        v = yield from f.pop()
        marks["v"] = v
        yield WaitCycles(5)
        marks["horizon"] = f.supply_horizon()

    eng.spawn(consumer(), "consumer")
    eng.run()
    assert marks["v"] == "only"
    assert marks["horizon"] == FOREVER


def test_process_floor_recurses_through_parked_chain():
    """B parked on a FIFO fed only by sleeping A cannot run before A's
    wake propagates through the handoff, so a FIFO produced by B gets a
    transitive producer-sleep horizon."""
    eng = Engine()
    a2b = eng.fifo("a2b", capacity=4, latency=2)
    b2c = eng.fifo("b2c", capacity=4, latency=3)

    def proc_a():
        yield WaitCycles(50)
        a2b.stage("x")
        yield TICK

    def proc_b():
        v = yield from a2b.pop()
        while not b2c.writable:
            yield b2c.can_push
        b2c.stage(v)
        yield TICK

    pa = eng.spawn(proc_a(), "A")
    pb = eng.spawn(proc_b(), "B")
    a2b.register_producer(pa)
    b2c.register_producer(pb)
    marks = {}

    def observer():
        yield TICK  # A asleep, B parked on a2b.can_pop
        # B's floor: a2b readable no earlier than 50 + 2.
        marks["floor_b"] = eng.process_floor(pb)
        marks["horizon_b2c"] = b2c.supply_horizon()

    eng.spawn(observer(), "observer")
    eng.run()
    assert marks["floor_b"] == 52
    assert marks["horizon_b2c"] == 52 + 3


def test_foreign_producer_tripwire():
    """Once a producer set is registered, a stage from any other process
    must fail loudly instead of silently invalidating planner horizons."""
    from repro.core.errors import SimulationError

    eng = Engine()
    f = eng.fifo("f", capacity=4)

    def legit():
        f.stage("ok")
        yield TICK

    def rogue():
        yield TICK
        f.stage("bad")
        yield TICK

    proc = eng.spawn(legit(), "legit")
    f.register_producer(proc)
    eng.spawn(rogue(), "rogue")
    with pytest.raises(SimulationError, match="not in the registered"):
        eng.run()


# ----------------------------------------------------------------------
# Exact occupancy (time-indexed delta log)
# ----------------------------------------------------------------------
def test_max_occupancy_exact_with_future_events():
    """Burst commits dated in the future count only once the clock
    reaches them, and same-cycle stage/take events net out."""
    eng = Engine()
    f = eng.fifo("f", capacity=8, latency=1)
    marks = {}

    def producer():
        f.stage_burst(list(range(4)), [0, 1, 2, 3])
        marks["at_commit"] = f.max_occupancy  # only cycle-0 stage counts
        yield WaitCycles(10)
        marks["later"] = f.max_occupancy

    def consumer():
        yield WaitCycles(6)
        # Take two items in the same cycle-span the producer staged them:
        f.take_burst([6, 7])
        yield TICK

    eng.spawn(producer(), "p")
    eng.spawn(consumer(), "c")
    eng.run()
    assert marks["at_commit"] == 1
    assert marks["later"] == 4


def test_max_occupancy_same_cycle_netting():
    eng = Engine()
    f = eng.fifo("f", capacity=4, latency=1)

    def flow():
        f.stage("a")          # cycle 0: +1
        yield TICK
        f.stage("b")          # cycle 1: +1 (occ 2)
        yield TICK
        v = f.take()          # cycle 2: -1 ...
        assert v == "a"
        f.stage("c")          # ... and +1 in the same cycle: net 2
        yield TICK

    eng.spawn(flow(), "flow")
    eng.run()
    assert f.max_occupancy == 2


# ----------------------------------------------------------------------
# Cascade behaviour on real transports
# ----------------------------------------------------------------------
def _stream_program(hops, n, config):
    prog = SMIProgram(noctua_bus(), config=config)
    data = np.zeros(n, dtype=np.float32)

    def snd(smi):
        ch = smi.open_send_channel(n, SMI_FLOAT, hops, 0)
        yield from ch.push_vec(data, width=8)

    def rcv(smi):
        ch = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
        yield from ch.pop_vec(n, width=8)

    prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, SMI_FLOAT,
                                             peer=hops)])
    prog.add_kernel(rcv, rank=hops, ops=[OpDecl("recv", 0, SMI_FLOAT,
                                                peer=0)])
    res = prog.run(max_cycles=10_000_000)
    assert res.completed, res.reason
    return res


def test_cascade_coplans_multihop_stream():
    """On a multi-hop stream the cascade must plan across CK boundaries:
    windows committed for parked/sleeping peer CKs from another CK's
    engine event."""
    res = _stream_program(4, 4096, NOCTUA.with_(burst_mode=True))
    stats = collect_planner_stats(res.transport)
    assert stats.windows > 0
    assert stats.coplans > 0, "no cross-CK co-planning happened"
    assert stats.extensions > 0, "no window was ever extended in-event"
    assert stats.takes > 4096 // SMI_FLOAT.elements_per_packet
    assert stats.mean_window > 1.0


def test_equivalence_under_tiny_snapshot(monkeypatch):
    """Truncated snapshots must stay cycle-exact: with more items present
    beyond the cut, "drained" never means "unreadable", and no horizon
    (not even a producer-sleep one) may let a plan park past a
    physically present item. A snapshot depth of 2 forces truncation on
    every multi-item input."""
    import repro.transport.planner as planner_mod

    ref = _stream_program(3, 1024, NOCTUA.with_(burst_mode=False))
    monkeypatch.setattr(planner_mod, "PLAN_SNAPSHOT", 2)
    fast = _stream_program(3, 1024, NOCTUA.with_(burst_mode=True))
    assert fast.cycles == ref.cycles
    ref_occ = {n_: s["max_occupancy"]
               for n_, s in ref.engine.fifo_stats().items()}
    fast_occ = {n_: s["max_occupancy"]
                for n_, s in fast.engine.fifo_stats().items()}
    assert fast_occ == ref_occ


def test_planner_idle_without_burst_mode():
    res = _stream_program(2, 256, NOCTUA.with_(burst_mode=False))
    stats = collect_planner_stats(res.transport)
    assert stats.attempts == 0
    assert stats.windows == 0


def test_collective_workload_planner_hit_rate():
    """Producer-sleep horizons make collective traffic plannable even
    though every transit FIFO stays flow-live (runtime communicators):
    a reduce must see committed windows, not just failed attempts."""
    n = 256
    num_ranks = 4
    prog = SMIProgram(noctua_bus(), config=NOCTUA.with_(burst_mode=True))

    def kernel(smi):
        comm = smi.comm_world.sub(list(range(num_ranks)))
        if not comm.contains(smi.rank):
            return
            yield  # pragma: no cover
        chan = smi.open_reduce_channel(n, SMI_FLOAT, SMI_ADD, 0, 0, comm)
        for i in range(n):
            yield from chan.reduce(float(smi.rank + i))

    prog.add_kernel(kernel, ranks="all",
                    ops=[OpDecl("reduce", 0, SMI_FLOAT, reduce_op=SMI_ADD)])
    res = prog.run(max_cycles=10_000_000)
    assert res.completed, res.reason
    stats = collect_planner_stats(res.transport)
    assert stats.windows > 0, "planner never committed a collective window"
    assert stats.hit_rate > 0.0
    assert stats.takes > 0


# ----------------------------------------------------------------------
# Statistics helpers
# ----------------------------------------------------------------------
def test_planner_stats_merge_and_rates():
    a = PlannerStats(attempts=4, windows=2, window_cycles=60, takes=20)
    b = PlannerStats(attempts=1, windows=1, window_cycles=40, takes=12,
                     extensions=1, coplans=2)
    m = a.merge(b)
    assert m.attempts == 5 and m.windows == 3
    assert m.hit_rate == pytest.approx(3 / 5)
    # 3 windows + 1 extension + 2 coplans committed 100 cycles total.
    assert m.mean_window == pytest.approx(100 / 6)
    assert PlannerStats().hit_rate == 0.0
    assert PlannerStats().mean_window == 0.0


def test_gap_histogram_percentiles():
    h = GapHistogram()
    cycle = 0
    # 99 gaps of 1, one gap of 50.
    for _ in range(100):
        cycle += 1
        h.record(cycle)
    h.record(cycle + 50)
    assert h.p50 == 1
    assert h.p99 == 1
    assert h.percentile(1.0) == 50
    assert h.max_gap == 50
    with pytest.raises(ValueError):
        GapHistogram().percentile(0.5)
    with pytest.raises(ValueError):
        h.percentile(1.5)


def test_gap_histogram_empty_percentile_message():
    """Regression: percentiles of an empty histogram raise a clear,
    self-explanatory error — including the one-event case, which records
    no gap and therefore defines no percentile."""
    with pytest.raises(ValueError, match="empty GapHistogram"):
        GapHistogram().percentile(0.5)
    one_event = GapHistogram()
    one_event.record(42)  # one event: still zero gaps
    with pytest.raises(ValueError, match="empty GapHistogram"):
        one_event.p50
    with pytest.raises(ValueError, match="empty GapHistogram"):
        one_event.p99


def test_planner_stats_replication_counters():
    a = PlannerStats(pattern_checks=4, replications=2, replicated_rounds=10)
    b = PlannerStats(pattern_checks=1, replications=1, replicated_rounds=1,
                     windows=1, attempts=1, window_cycles=32)
    m = a.merge(b)
    assert m.pattern_checks == 5
    assert m.replications == 3
    assert m.replicated_rounds == 11
    assert m.replication_hit_rate == pytest.approx(3 / 5)
    assert m.mean_train_rounds == pytest.approx(11 / 3)
    # Replicated trains count as committed windows for mean_window.
    assert m.mean_window == pytest.approx(32 / 4)
    assert PlannerStats().replication_hit_rate == 0.0
    assert PlannerStats().mean_train_rounds == 0.0
