"""The cycle-domain tracing & metrics subsystem (``src/repro/trace``).

Unit coverage for the flight recorder (ring wraparound, tails), the
stride-sampled metrics registry (bulk clock jumps, bucket
last-write-wins), the cross-shard segment merge (ordering, counter
namespacing), the canonical timing schema (loud rejection of malformed
entries), and both exporters — plus the integration contracts: tracing
on vs off is cycle-identical on every backend, deadlock dumps carry the
recorder tail, ``planner_summary`` renders the disarmed state, and a
4-shard process-backend run emits one merged Perfetto-loadable timeline
with per-shard cycle tracks, planner ff/abort/disarm events, and
wall-clock compute/serialize/ipc_wait lanes.
"""

import json
import multiprocessing

import numpy as np
import pytest

from repro import SMI_FLOAT, SMIProgram, noctua_bus
from repro.codegen.metadata import OpDecl
from repro.core.config import NOCTUA, hardware_preset
from repro.core.errors import DeadlockError
from repro.simulation.engine import Engine
from repro.simulation.stats import PlannerStats, collect_planner_stats
from repro.trace import (
    EVENT_KINDS,
    MetricsRegistry,
    TIMING_FIELDS,
    TraceRecorder,
    merge_segments,
    merge_snapshots,
    new_phase,
    to_jsonl,
    to_perfetto,
    validate_timing,
    write_trace,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
DEEP = hardware_preset("noctua-deep")


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
def test_ring_wraparound_keeps_last_n_oldest_first():
    rec = TraceRecorder(capacity=8)
    for i in range(20):
        rec.emit(i * 10, "stage", "f", f"ev{i}")
    assert len(rec) == 8
    assert rec.emitted == 20
    assert rec.dropped == 12
    events = rec.events()
    # The last 8 emits survive, oldest first, seq strictly increasing.
    assert [ev[4] for ev in events] == [f"ev{i}" for i in range(12, 20)]
    assert [ev[1] for ev in events] == list(range(12, 20))
    # tail() trims from the old end; tail_lines mentions the overwrites.
    assert [ev[4] for ev in rec.tail(3)] == ["ev17", "ev18", "ev19"]
    lines = rec.tail_lines(3)
    assert "overwritten" in lines[0]
    assert "ev19" in lines[-1]


def test_recorder_rejects_degenerate_capacity():
    with pytest.raises(ValueError):
        TraceRecorder(capacity=0)


def test_event_kinds_are_the_documented_taxonomy():
    assert len(EVENT_KINDS) == len(set(EVENT_KINDS))
    for kind in ("dispatch", "park", "wake", "stage", "take", "grant",
                 "xfer", "span", "ff", "abort", "disarm", "epoch", "drain"):
        assert kind in EVENT_KINDS


# ----------------------------------------------------------------------
# Metrics registry: stride sampling across bulk jumps
# ----------------------------------------------------------------------
def test_stride_sampling_buckets_and_last_write_wins():
    reg = MetricsRegistry(stride=100)
    reg.sample("occ", 5, 1.0)
    reg.sample("occ", 42, 2.0)    # same bucket: overwrites
    reg.sample("occ", 99, 3.0)    # still the same bucket
    reg.sample("occ", 100, 4.0)   # next bucket
    snap = reg.snapshot()
    assert snap["occ"] == [(0, 3.0), (100, 4.0)]


def test_stride_sampling_survives_bulk_clock_jump():
    # A macro-cruise jump moves the clock by millions of cycles in one
    # event; the series must stay one-point-per-touched-bucket, not
    # one-per-cycle.
    reg = MetricsRegistry(stride=4096)
    reg.sample("cov", 10, 0.1)
    reg.sample("cov", 5_000_000, 0.9)
    reg.sample("cov", 5_000_001, 0.95)
    snap = reg.snapshot()
    assert snap["cov"] == [(0, 0.1), (5_000_000 - 5_000_000 % 4096, 0.95)]


def test_metrics_rejects_degenerate_stride():
    with pytest.raises(ValueError):
        MetricsRegistry(stride=0)


def test_merge_snapshots_unions_names_and_buckets():
    a = {"x": [(0, 1.0), (100, 2.0)], "y": [(0, 5.0)]}
    b = {"x": [(100, 9.0), (200, 3.0)], "z": [(0, 7.0)]}
    merged = merge_snapshots(a, b)
    assert merged["x"] == [(0, 1.0), (100, 9.0), (200, 3.0)]  # b wins
    assert merged["y"] == [(0, 5.0)]
    assert merged["z"] == [(0, 7.0)]


# ----------------------------------------------------------------------
# Canonical timing schema
# ----------------------------------------------------------------------
def test_new_phase_matches_canonical_schema():
    assert tuple(new_phase()) == TIMING_FIELDS
    assert validate_timing(new_phase()) is not None


def test_validate_timing_passes_empty_and_rejects_malformed():
    assert validate_timing(None) is None
    assert validate_timing({}) is None
    with pytest.raises(ValueError, match="timing entry"):
        validate_timing("not-a-dict")
    with pytest.raises(ValueError, match="missing"):
        validate_timing({"compute_s": 1.0})
    bad = dict(new_phase(), extra=1)
    with pytest.raises(ValueError, match="unexpected"):
        validate_timing(bad)
    nonnum = dict(new_phase(), compute_s="fast")
    with pytest.raises(ValueError, match="must be numeric"):
        validate_timing(nonnum)
    # An aborted worker reports unmeasured phases as None: canonical
    # shape, so it validates (renderers count None as zero).
    aborted = {k: None for k in TIMING_FIELDS}
    assert validate_timing(aborted) is aborted


def test_shard_timing_summary_rejects_malformed_loudly():
    from repro.harness.reporting import shard_timing_summary

    good = dict(new_phase(), compute_s=0.25, inner_rounds=3)
    table = shard_timing_summary([good, None, {}])
    assert "shard 0" in table and "shard 2" in table
    with pytest.raises(ValueError, match="shard 1 timing"):
        shard_timing_summary([good, {"compute_s": 1.0}])


# ----------------------------------------------------------------------
# Cross-shard merge & exporters
# ----------------------------------------------------------------------
def _two_segments():
    a = TraceRecorder(capacity=64, stride=100, shard=0)
    b = TraceRecorder(capacity=64, stride=100, shard=1)
    a.emit(5, "stage", "f0", "a-first")
    b.emit(5, "stage", "f1", "b-first")
    a.emit(9, "span", "planner", "train", dur=40, args={"rounds": 2})
    b.emit(2, "take", "f1", "b-early")
    a.sample("occ/f0", 5, 3.0)
    b.sample("occ/f1", 5, 4.0)
    a.wall_span("compute", 0.0, 0.5)
    b.wall_span("ipc_wait", 0.1, 0.2)
    return [a.segment(), b.segment()]


def test_merge_orders_by_cycle_then_shard_then_seq():
    merged = merge_segments(_two_segments())
    assert merged["shards"] == [0, 1]
    keys = [(ev[0], ev[1], ev[2]) for ev in merged["events"]]
    assert keys == sorted(keys)
    # Same-cycle events: shard 0 before shard 1.
    cyc5 = [ev for ev in merged["events"] if ev[0] == 5]
    assert [ev[1] for ev in cyc5] == [0, 1]
    # Counters are namespaced per shard; wall spans carry their shard.
    assert set(merged["counters"]) == {"s0/occ/f0", "s1/occ/f1"}
    assert {w[0] for w in merged["wall"]} == {0, 1}


def test_perfetto_export_structure():
    merged = merge_segments(_two_segments())
    doc = to_perfetto(merged)
    evs = doc["traceEvents"]
    meta = [e for e in evs if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
    assert {"shard 0 (cycles)", "shard 1 (cycles)",
            "shard 0 (wall)", "shard 1 (wall)"} <= names
    spans = [e for e in evs if e["ph"] == "X"]
    assert any(e["name"] == "train" and e["dur"] == 40 for e in spans)
    counters = [e for e in evs if e["ph"] == "C"]
    assert counters, "metrics series must render as counter tracks"
    # Everything is JSON-serialisable as-is.
    json.dumps(doc)


def test_jsonl_export_parses_line_by_line():
    merged = merge_segments(_two_segments())
    lines = to_jsonl(merged).strip().splitlines()
    header = json.loads(lines[0])
    assert header["shards"] == [0, 1]
    kinds = {json.loads(line)["type"] for line in lines[1:]}
    assert {"event", "counter", "wall"} <= kinds


def test_write_trace_picks_format_from_extension(tmp_path):
    merged = merge_segments(_two_segments())
    pf = tmp_path / "out.json"
    jl = tmp_path / "out.jsonl"
    write_trace(merged, str(pf))
    write_trace(merged, str(jl))
    assert "traceEvents" in json.loads(pf.read_text())
    first = json.loads(jl.read_text().splitlines()[0])
    assert "shards" in first


# ----------------------------------------------------------------------
# Integration: zero-overhead-off, deadlock dumps, reporting
# ----------------------------------------------------------------------
def _stream_end(config, n=512, hops=2):
    prog = SMIProgram(noctua_bus(), config=config)
    data = np.arange(n, dtype=np.float32)

    def snd(smi):
        ch = smi.open_send_channel(n, SMI_FLOAT, hops, 0)
        yield from ch.push_vec(data, width=8)

    def rcv(smi):
        ch = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
        out = yield from ch.pop_vec(n, width=8)
        smi.store("ok", bool(np.array_equal(out, data)))
        smi.store("end", smi.cycle)

    prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, SMI_FLOAT, peer=hops)])
    prog.add_kernel(rcv, rank=hops, ops=[OpDecl("recv", 0, SMI_FLOAT, peer=0)])
    res = prog.run(max_cycles=50_000_000)
    assert res.completed and res.store(hops, "ok")
    return res


@pytest.mark.parametrize("backend", ["sequential", "sharded"])
def test_tracing_is_cycle_identical(backend):
    base = NOCTUA if backend == "sequential" else NOCTUA.with_(
        backend="sharded", shards=2)
    off = _stream_end(base)
    on = _stream_end(base.with_(trace=True))
    assert on.cycles == off.cycles
    assert on.store(2, "end") == off.store(2, "end")
    assert on.engine.fifo_stats() == off.engine.fifo_stats()


def test_sequential_run_attaches_recorder_only_when_enabled():
    assert _stream_end(NOCTUA).engine.trace is None
    rec = _stream_end(NOCTUA.with_(trace=True)).engine.trace
    assert rec is not None and len(rec) > 0
    kinds = {ev[2] for ev in rec.events()}
    assert {"dispatch", "stage", "take", "xfer"} <= kinds


def test_trace_export_env_hook(tmp_path, monkeypatch):
    out = tmp_path / "run.json"
    monkeypatch.setenv("REPRO_TRACE_OUT", str(out))
    _stream_end(NOCTUA.with_(trace=True))
    doc = json.loads(out.read_text())
    assert doc["traceEvents"]
    # Tracing off: the hook must not write anything.
    out2 = tmp_path / "off.json"
    monkeypatch.setenv("REPRO_TRACE_OUT", str(out2))
    _stream_end(NOCTUA)
    assert not out2.exists()


def test_deadlock_dump_carries_recorder_tail():
    eng = Engine()
    eng.trace = TraceRecorder(capacity=32)
    f = eng.fifo("stuck", capacity=1)

    def starved():
        item = yield from f.pop()  # nobody ever pushes
        return item

    eng.spawn(starved, "starved-consumer")
    with pytest.raises(DeadlockError) as exc:
        eng.run()
    msg = str(exc.value)
    assert "Last trace events before the deadlock" in msg
    assert "park" in msg and "starved-consumer" in msg


def test_deadlock_dump_without_tracing_is_unchanged():
    eng = Engine()
    f = eng.fifo("stuck", capacity=1)

    def starved():
        yield from f.pop()

    eng.spawn(starved, "starved-consumer")
    with pytest.raises(DeadlockError) as exc:
        eng.run()
    assert "Last trace events" not in str(exc.value)


def test_planner_summary_renders_disarm_reason():
    from repro.harness.reporting import planner_summary

    live = PlannerStats(attempts=10, windows=8)
    assert "DISARMED" not in planner_summary(live)
    disarmed = PlannerStats(
        attempts=10, windows=8, ff_disarms=1,
        ff_disarm_reason="cross-shard boundary chain")
    line = planner_summary(disarmed)
    assert "macro: DISARMED (cross-shard boundary chain)" in line


def test_planner_stats_merge_folds_disarms_first_reason_wins():
    a = PlannerStats(ff_disarms=1, ff_disarm_reason="overlap")
    b = PlannerStats(ff_disarms=2, ff_disarm_reason="cross-shard")
    m = a.merge(b)
    assert m.ff_disarms == 3
    assert m.ff_disarm_reason == "overlap"
    assert PlannerStats().merge(b).ff_disarm_reason == "cross-shard"


def test_macro_ff_jump_and_guard_abort_are_traced():
    """Sequential deep stream: the trace shows the jump — and, with a
    one-shot guard veto installed, the abort that preceded it."""
    from repro.transport import planner as planner_mod

    fired = []

    def veto_once(guard, hop):
        if guard == "budget" and not fired:
            fired.append((guard, hop))
            return True
        return False

    cfg = DEEP.with_(macro_cruise=True, trace=True)
    assert planner_mod._ff_guard_probe is None
    planner_mod._ff_guard_probe = veto_once
    try:
        res = _stream_end(cfg, n=16384, hops=1)
    finally:
        planner_mod._ff_guard_probe = None
    assert fired, "probe never consulted — macro-ff did not arm"
    kinds = {ev[2] for ev in res.engine.trace.events()}
    stats = collect_planner_stats(res.transport)
    assert stats.ff_jumps >= 1
    assert "ff" in kinds
    assert "abort" in kinds
    events = res.engine.trace.events()
    aborts = [ev for ev in events if ev[2] == "abort"]
    assert aborts[0][6]["guard"] == "budget"


# ----------------------------------------------------------------------
# Acceptance: 4-shard process-backend merged timeline
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAVE_FORK, reason="process backend needs fork")
def test_four_shard_process_trace_merges_onto_one_timeline(tmp_path):
    """One 4-shard forked run, three streams: an intra-shard deep
    stream that macro-fast-forwards (>= 1 jump; a one-shot probe also
    forces a guard abort), and a second shard hosting both an
    intra-shard stream and a cross-shard sender — an un-armable shape
    whose permanent refusal disarms that shard's resolver. The merged
    trace must carry per-shard cycle tracks, the ff/abort/disarm
    events, and wall-clock lanes."""
    from repro.transport import planner as planner_mod

    n = 8192
    cfg = DEEP.with_(backend="process", shards=4, trace=True,
                     macro_cruise=True)
    partition = [[0, 1], [2, 3], [4, 5], [6, 7]]
    prog = SMIProgram(noctua_bus(), config=cfg, partition=partition)
    data = np.arange(n, dtype=np.float32)

    def make(src, dst, port):
        def snd(smi):
            ch = smi.open_send_channel(n, SMI_FLOAT, dst, port)
            yield from ch.push_vec(data, width=8)

        def rcv(smi):
            ch = smi.open_recv_channel(n, SMI_FLOAT, src, port)
            out = yield from ch.pop_vec(n, width=8)
            smi.store(f"ok{port}", bool(np.array_equal(out, data)))

        prog.add_kernel(snd, rank=src, name=f"snd{port}",
                        ops=[OpDecl("send", port, SMI_FLOAT, peer=dst)])
        prog.add_kernel(rcv, rank=dst, name=f"rcv{port}",
                        ops=[OpDecl("recv", port, SMI_FLOAT, peer=src)])

    make(0, 1, 0)   # intra-shard: arms, jumps
    make(2, 3, 1)   # intra-shard inside shard 1
    make(2, 5, 2)   # cross-shard sender: shard 1 can never arm

    fired = []

    def veto_once(guard, hop):
        if guard == "budget" and not fired:
            fired.append((guard, hop))
            return True
        return False

    # The fork start method makes the workers inherit the probe.
    assert planner_mod._ff_guard_probe is None
    planner_mod._ff_guard_probe = veto_once
    try:
        res = prog.run(max_cycles=200_000_000)
    finally:
        planner_mod._ff_guard_probe = None
    assert res.completed, res.reason
    assert res.store(1, "ok0")
    assert res.store(3, "ok1") and res.store(5, "ok2")

    merged = res.transport.trace
    assert merged is not None
    assert merged["shards"] == [0, 1, 2, 3]
    kinds = {ev[3] for ev in merged["events"]}
    assert "ff" in kinds, "intra-shard stream must land a macro-ff jump"
    assert "abort" in kinds, "vetoed guard must leave an abort event"
    assert "disarm" in kinds, "un-armable shard must disarm its resolver"
    assert "epoch" in kinds
    stats = collect_planner_stats(res.transport)
    assert stats.ff_jumps >= 1
    assert stats.ff_disarms >= 1
    disarms = [ev for ev in merged["events"] if ev[3] == "disarm"]
    assert disarms[0][7]["reason"] == stats.ff_disarm_reason != ""
    # Wall lanes: every worker reports all three phases.
    phases_by_shard = {}
    for shard, phase, t0, t1, _base in merged["wall"]:
        phases_by_shard.setdefault(shard, set()).add(phase)
        assert t1 >= t0
    for shard in range(4):
        assert {"compute", "ipc_wait"} <= phases_by_shard[shard]
    assert any("serialize" in p for p in phases_by_shard.values())
    # And the whole thing renders as one Perfetto-loadable document.
    out = tmp_path / "merged.json"
    write_trace(merged, str(out))
    doc = json.loads(out.read_text())
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta
             if e["name"] == "process_name"}
    for shard in range(4):
        assert f"shard {shard} (cycles)" in names
        assert f"shard {shard} (wall)" in names
