"""Integration tests: collective operations end to end (§3.2, §4.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    NOCTUA,
    SMI_ADD,
    SMI_FLOAT,
    SMI_INT,
    SMI_MAX,
    SMI_MIN,
    ChannelError,
    SMIProgram,
    bus,
    noctua_torus,
    torus2d,
)
from repro.codegen.metadata import OpDecl


def run_bcast(topology, n, root, dtype=SMI_FLOAT, comm_indices=None,
              config=NOCTUA, port=0):
    """Run a broadcast; return {rank: received list} and the result."""
    prog = SMIProgram(topology, config=config)
    world = list(range(topology.num_ranks))
    members = comm_indices if comm_indices is not None else world

    def kernel(smi):
        comm = smi.comm_world.sub(members) if comm_indices is not None else None
        if comm is not None and not comm.contains(smi.rank):
            return
            yield  # pragma: no cover - makes this a generator
        chan = smi.open_bcast_channel(n, dtype, port, root, comm)
        out = []
        my_comm_rank = smi.comm_rank(comm or smi.comm_world)
        for i in range(n):
            v = yield from chan.bcast(
                dtype.np_dtype.type(root * 100 + i) if my_comm_rank == root
                else None
            )
            out.append(v)
        smi.store("bcast", out)

    prog.add_kernel(kernel, ranks="all",
                    ops=[OpDecl("bcast", port, dtype)])
    res = prog.run(max_cycles=5_000_000)
    assert res.completed, res.reason
    actual_members = [members[i] for i in range(len(members))] if comm_indices else world
    return res, {r: res.stores.get((r, "bcast")) for r in actual_members}


def test_bcast_from_rank0_torus():
    res, outs = run_bcast(noctua_torus(), 25, root=0)
    expect = [float(i) for i in range(25)]
    for r in range(8):
        np.testing.assert_allclose(outs[r], expect)


def test_bcast_from_nonzero_root():
    res, outs = run_bcast(torus2d(2, 2), 10, root=3)
    expect = [float(300 + i) for i in range(10)]
    for r in range(4):
        np.testing.assert_allclose(outs[r], expect)


def test_bcast_on_bus_topology():
    res, outs = run_bcast(bus(4), 16, root=1)
    expect = [float(100 + i) for i in range(16)]
    for r in range(4):
        np.testing.assert_allclose(outs[r], expect)


def test_bcast_int_datatype():
    res, outs = run_bcast(bus(3), 9, root=0, dtype=SMI_INT)
    for r in range(3):
        assert [int(v) for v in outs[r]] == list(range(9))


def test_bcast_subcommunicator():
    # Only ranks {0, 2, 3} participate; rank 1 stays silent.
    res, outs = run_bcast(torus2d(2, 2), 8, root=0, comm_indices=[0, 2, 3])
    expect = [float(i) for i in range(8)]
    for r in (0, 2, 3):
        np.testing.assert_allclose(outs[r], expect)
    assert (1, "bcast") not in res.stores


def run_reduce(topology, n, root, op, dtype=SMI_FLOAT, config=NOCTUA,
               contributions=None, port=0):
    prog = SMIProgram(topology, config=config)
    P = topology.num_ranks

    def kernel(smi):
        chan = smi.open_reduce_channel(n, dtype, op, port, root)
        out = []
        for i in range(n):
            if contributions is not None:
                value = contributions[smi.rank][i]
            else:
                value = dtype.np_dtype.type(smi.rank * 10 + i)
            v = yield from chan.reduce(value)
            if smi.rank == root:
                out.append(v)
        if smi.rank == root:
            smi.store("reduce", out)

    prog.add_kernel(
        kernel, ranks="all",
        ops=[OpDecl("reduce", port, dtype, reduce_op=op)],
    )
    res = prog.run(max_cycles=5_000_000)
    assert res.completed, res.reason
    return res, res.store(root, "reduce")


def test_reduce_sum_torus():
    res, out = run_reduce(noctua_torus(), 20, root=0, op=SMI_ADD)
    expect = [sum(r * 10 + i for r in range(8)) for i in range(20)]
    np.testing.assert_allclose(out, expect)


def test_reduce_nonzero_root():
    res, out = run_reduce(torus2d(2, 2), 12, root=2, op=SMI_ADD)
    expect = [sum(r * 10 + i for r in range(4)) for i in range(12)]
    np.testing.assert_allclose(out, expect)


def test_reduce_max_min():
    rng = np.random.default_rng(3)
    n, P = 15, 4
    contribs = {r: rng.normal(size=n).astype(np.float32) for r in range(P)}
    _, out_max = run_reduce(torus2d(2, 2), n, 0, SMI_MAX, contributions=contribs)
    _, out_min = run_reduce(torus2d(2, 2), n, 0, SMI_MIN, contributions=contribs)
    stacked = np.stack([contribs[r] for r in range(P)])
    np.testing.assert_allclose(out_max, stacked.max(axis=0), rtol=1e-6)
    np.testing.assert_allclose(out_min, stacked.min(axis=0), rtol=1e-6)


def test_reduce_crossing_credit_tiles():
    # Message longer than the credit buffer C: multiple credit round trips.
    cfg = NOCTUA.with_(reduce_credits=8)
    res, out = run_reduce(bus(3), 30, root=0, op=SMI_ADD, config=cfg)
    expect = [sum(r * 10 + i for r in range(3)) for i in range(30)]
    np.testing.assert_allclose(out, expect)


def test_reduce_int_overflow_free_sum():
    res, out = run_reduce(bus(2), 10, root=0, op=SMI_ADD, dtype=SMI_INT)
    expect = [sum(r * 10 + i for r in range(2)) for i in range(10)]
    assert [int(v) for v in out] == expect


def run_scatter(topology, n, root, dtype=SMI_INT, port=0):
    prog = SMIProgram(topology)
    P = topology.num_ranks

    def kernel(smi):
        chan = smi.open_scatter_channel(n, dtype, port, root)
        if smi.rank == root:
            for k in range(P * n):
                yield from chan.push(k)
        out = []
        for _ in range(n):
            v = yield from chan.pop()
            out.append(int(v))
        smi.store("scatter", out)

    prog.add_kernel(kernel, ranks="all", ops=[OpDecl("scatter", port, dtype)])
    res = prog.run(max_cycles=5_000_000)
    assert res.completed, res.reason
    return res, {r: res.store(r, "scatter") for r in range(P)}


def test_scatter_segments_in_comm_order():
    res, outs = run_scatter(noctua_torus(), 12, root=0)
    for r in range(8):
        assert outs[r] == list(range(r * 12, (r + 1) * 12))


def test_scatter_nonzero_root():
    res, outs = run_scatter(torus2d(2, 2), 9, root=3)
    for r in range(4):
        assert outs[r] == list(range(r * 9, (r + 1) * 9))


def run_gather(topology, n, root, dtype=SMI_INT, port=0):
    prog = SMIProgram(topology)
    P = topology.num_ranks

    def kernel(smi):
        chan = smi.open_gather_channel(n, dtype, port, root)
        for i in range(n):
            yield from chan.push(smi.rank * 1000 + i)
        if smi.rank == root:
            out = []
            for _ in range(P * n):
                v = yield from chan.pop()
                out.append(int(v))
            smi.store("gather", out)

    prog.add_kernel(kernel, ranks="all", ops=[OpDecl("gather", port, dtype)])
    res = prog.run(max_cycles=5_000_000)
    assert res.completed, res.reason
    return res, res.store(root, "gather")


def test_gather_sorted_by_comm_rank():
    # The root receives data pre-sorted despite arbitrary readiness order:
    # the GRANT protocol enforces it (§3.3).
    res, out = run_gather(noctua_torus(), 7, root=0)
    expect = [r * 1000 + i for r in range(8) for i in range(7)]
    assert out == expect


def test_gather_nonzero_root():
    res, out = run_gather(torus2d(2, 2), 5, root=1)
    expect = [r * 1000 + i for r in range(4) for i in range(5)]
    assert out == expect


def test_two_collectives_in_sequence_same_port():
    """Two bcasts back-to-back on one port must not mix (§3.3)."""
    prog = SMIProgram(bus(3))
    n = 10

    def kernel(smi):
        for round_ in range(2):
            chan = smi.open_bcast_channel(n, SMI_INT, 0, 0)
            out = []
            for i in range(n):
                v = yield from chan.bcast(
                    round_ * 100 + i if smi.rank == 0 else None
                )
                out.append(int(v))
            smi.store(f"round{round_}", out)

    prog.add_kernel(kernel, ranks="all", ops=[OpDecl("bcast", 0, SMI_INT)])
    res = prog.run(max_cycles=5_000_000)
    assert res.completed
    for r in range(3):
        assert res.store(r, "round0") == list(range(10))
        assert res.store(r, "round1") == [100 + i for i in range(10)]


def test_parallel_collectives_distinct_ports():
    """Multiple collectives execute concurrently on separate ports (§3.2).

    Each collective is driven by its own application kernel — "as
    participating in collective operations is parallel with the number of
    distinct ports, multiple collectives can perform their rendezvous and
    communication concurrently" (§3.3). (Interleaving two collectives in a
    single sequential loop would instead create a cyclic dependency through
    packetisation and deadlock — by design, see §3.3's correctness rule.)
    """
    prog = SMIProgram(torus2d(2, 2))
    n = 12

    def bcast_app(smi):
        b = smi.open_bcast_channel(n, SMI_INT, 0, 0)
        out = []
        for i in range(n):
            v = yield from b.bcast(i if smi.rank == 0 else None)
            out.append(int(v))
        smi.store("b", out)

    def reduce_app(smi):
        r = smi.open_reduce_channel(n, SMI_FLOAT, SMI_ADD, 1, 0)
        out = []
        for _ in range(n):
            s = yield from r.reduce(float(smi.rank))
            if smi.rank == 0:
                out.append(float(s))
        if smi.rank == 0:
            smi.store("r", out)

    prog.add_kernel(bcast_app, ranks="all", ops=[OpDecl("bcast", 0, SMI_INT)])
    prog.add_kernel(reduce_app, ranks="all",
                    ops=[OpDecl("reduce", 1, SMI_FLOAT, reduce_op=SMI_ADD)])
    res = prog.run(max_cycles=5_000_000)
    assert res.completed
    for rank in range(4):
        assert res.store(rank, "b") == list(range(n))
    np.testing.assert_allclose(res.store(0, "r"), [6.0] * n)  # 0+1+2+3


def test_interleaved_collectives_single_loop_deadlocks():
    """The §3.3 correctness rule: a single sequential loop that alternates a
    bcast push with a blocking reduce creates a cyclic dependency (the
    bcast element sits in a partial packet while the loop blocks on the
    reduce) — the simulator must detect and report the deadlock."""
    import pytest as _pytest

    from repro import DeadlockError

    prog = SMIProgram(torus2d(2, 2))
    n = 12

    def kernel(smi):
        b = smi.open_bcast_channel(n, SMI_INT, 0, 0)
        r = smi.open_reduce_channel(n, SMI_FLOAT, SMI_ADD, 1, 0)
        for i in range(n):
            yield from b.bcast(i if smi.rank == 0 else None)
            yield from r.reduce(float(smi.rank))

    prog.add_kernel(kernel, ranks="all", ops=[
        OpDecl("bcast", 0, SMI_INT),
        OpDecl("reduce", 1, SMI_FLOAT, reduce_op=SMI_ADD),
    ])
    with _pytest.raises(DeadlockError):
        prog.run(max_cycles=5_000_000)


def test_bcast_wrong_kind_port_rejected():
    prog = SMIProgram(bus(2))

    def kernel(smi):
        smi.open_bcast_channel(4, SMI_INT, 0, 0)  # port 0 hosts a reduce
        yield None

    prog.add_kernel(kernel, ranks="all", ops=[
        OpDecl("reduce", 0, SMI_INT, reduce_op=SMI_ADD)
    ])
    with pytest.raises(ChannelError, match="support kernel"):
        prog.run(max_cycles=10_000)


def test_root_must_supply_value():
    prog = SMIProgram(bus(2))

    def kernel(smi):
        chan = smi.open_bcast_channel(4, SMI_INT, 0, 0)
        yield from chan.bcast(None if smi.rank == 0 else None)

    prog.add_kernel(kernel, ranks="all", ops=[OpDecl("bcast", 0, SMI_INT)])
    with pytest.raises(ChannelError, match="root must provide"):
        prog.run(max_cycles=10_000)


@settings(deadline=None, max_examples=10)
@given(
    n=st.integers(min_value=1, max_value=40),
    root=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_reduce_matches_numpy(n, root, seed):
    """Property: streaming Reduce == numpy sum for random data/root/size."""
    rng = np.random.default_rng(seed)
    contribs = {r: rng.integers(-100, 100, size=n).astype(np.float32)
                for r in range(4)}
    _, out = run_reduce(torus2d(2, 2), n, root, SMI_ADD, contributions=contribs)
    expect = np.sum([contribs[r] for r in range(4)], axis=0)
    np.testing.assert_allclose(out, expect)


@settings(deadline=None, max_examples=10)
@given(
    n=st.integers(min_value=1, max_value=30),
    root=st.integers(min_value=0, max_value=7),
)
def test_property_bcast_identical_everywhere(n, root):
    """Property: all ranks see exactly the root's stream, any root/size."""
    _, outs = run_bcast(noctua_torus(), n, root=root)
    expect = [float(root * 100 + i) for i in range(n)]
    for r in range(8):
        np.testing.assert_allclose(outs[r], expect)


def test_scatter_stream_root_large_message():
    """stream_root interleaves feed and drain so the root's own segment can
    exceed the support-kernel buffers without deadlock."""
    top = torus2d(2, 2)
    prog = SMIProgram(top)
    n = 200  # far beyond the default app FIFO depth (56 elements)

    def kernel(smi):
        chan = smi.open_scatter_channel(n, SMI_INT, 0, 0)
        if smi.rank == 0:
            mine = yield from chan.stream_root(list(range(4 * n)))
        else:
            mine = []
            for _ in range(n):
                v = yield from chan.pop()
                mine.append(v)
        smi.store("seg", [int(v) for v in mine])

    prog.add_kernel(kernel, ranks="all", ops=[OpDecl("scatter", 0, SMI_INT)])
    res = prog.run(max_cycles=10_000_000)
    assert res.completed
    for r in range(4):
        assert res.store(r, "seg") == list(range(r * n, (r + 1) * n))


def test_gather_collect_root_large_message():
    top = torus2d(2, 2)
    prog = SMIProgram(top)
    n = 150

    def kernel(smi):
        chan = smi.open_gather_channel(n, SMI_INT, 0, 1)
        values = [smi.rank * 10_000 + i for i in range(n)]
        if smi.rank == 1:
            out = yield from chan.collect_root(values)
            smi.store("all", [int(v) for v in out])
        else:
            for v in values:
                yield from chan.push(v)

    prog.add_kernel(kernel, ranks="all", ops=[OpDecl("gather", 0, SMI_INT)])
    res = prog.run(max_cycles=10_000_000)
    assert res.completed
    expect = [r * 10_000 + i for r in range(4) for i in range(n)]
    assert res.store(1, "all") == expect


def test_stream_root_validations():
    top = torus2d(2, 2)
    prog = SMIProgram(top)

    def kernel(smi):
        chan = smi.open_scatter_channel(4, SMI_INT, 0, 0)
        if smi.rank == 0:
            yield from chan.stream_root([1, 2, 3])  # wrong length
        else:
            for _ in range(4):
                yield from chan.pop()

    prog.add_kernel(kernel, ranks="all", ops=[OpDecl("scatter", 0, SMI_INT)])
    with pytest.raises(ChannelError, match="count"):
        prog.run(max_cycles=100_000)


def test_collect_root_only_for_root():
    top = torus2d(2, 2)
    prog = SMIProgram(top)

    def kernel(smi):
        chan = smi.open_gather_channel(2, SMI_INT, 0, 0)
        if smi.rank == 1:  # not the root
            yield from chan.collect_root([1, 2])
        else:
            yield None

    prog.add_kernel(kernel, ranks="all", ops=[OpDecl("gather", 0, SMI_INT)])
    with pytest.raises(ChannelError, match="root"):
        prog.run(max_cycles=100_000)
