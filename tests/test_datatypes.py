"""Unit tests for SMI datatypes (element sizes, packetisation arithmetic)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.datatypes import (
    DATATYPES,
    HEADER_BYTES,
    PACKET_BYTES,
    PAYLOAD_BYTES,
    SMI_CHAR,
    SMI_DOUBLE,
    SMI_FLOAT,
    SMI_INT,
    SMI_LONG,
    SMI_SHORT,
    SMIDatatype,
    datatype_by_name,
)
from repro.core.errors import ConfigurationError


def test_packet_geometry_matches_paper():
    # §4.2: "network packets in our implementation are composed of 4 Bytes of
    # header data, and a payload of 28 Bytes".
    assert PACKET_BYTES == 32
    assert PAYLOAD_BYTES == 28
    assert HEADER_BYTES == 4


@pytest.mark.parametrize(
    "dtype,size,epp",
    [
        (SMI_CHAR, 1, 28),
        (SMI_SHORT, 2, 14),
        (SMI_INT, 4, 7),
        (SMI_FLOAT, 4, 7),
        (SMI_DOUBLE, 8, 3),
        (SMI_LONG, 8, 3),
    ],
)
def test_elements_per_packet(dtype, size, epp):
    assert dtype.size == size
    assert dtype.elements_per_packet == epp


def test_numpy_dtype_itemsize_consistency():
    for dt in DATATYPES.values():
        assert np.dtype(dt.np_dtype).itemsize == dt.size


@pytest.mark.parametrize("dtype", list(DATATYPES.values()), ids=lambda d: d.name)
def test_packets_for_zero_and_one(dtype):
    assert dtype.packets_for(0) == 0
    assert dtype.packets_for(1) == 1


@given(count=st.integers(min_value=0, max_value=10**7))
def test_packets_for_is_ceiling_division(count):
    for dt in (SMI_CHAR, SMI_INT, SMI_DOUBLE):
        packets = dt.packets_for(count)
        epp = dt.elements_per_packet
        assert packets * epp >= count
        assert (packets - 1) * epp < count or packets == 0


@given(count=st.integers(min_value=1, max_value=10**6))
def test_wire_bytes_exceed_payload_bytes(count):
    # The 4 B header makes wire bytes strictly larger than payload bytes.
    dt = SMI_FLOAT
    assert dt.wire_bytes_for(count) > dt.payload_bytes_for(count)
    # Header overhead is bounded by 4/32 of the wire traffic.
    assert dt.payload_bytes_for(count) >= dt.wire_bytes_for(count) * (28 / 32) - 28


def test_packets_for_rejects_negative():
    with pytest.raises(ConfigurationError):
        SMI_INT.packets_for(-1)


def test_datatype_by_name_roundtrip():
    for name, dt in DATATYPES.items():
        assert datatype_by_name(name) is dt


def test_datatype_by_name_unknown():
    with pytest.raises(ConfigurationError, match="unknown SMI datatype"):
        datatype_by_name("SMI_QUATERNION")


def test_custom_datatype_validation():
    with pytest.raises(ConfigurationError):
        SMIDatatype("BAD", 0, np.dtype(np.int8))
    with pytest.raises(ConfigurationError):
        SMIDatatype("BAD", 64, np.dtype(np.int8))
    with pytest.raises(ConfigurationError):
        # Mismatched numpy itemsize.
        SMIDatatype("BAD", 2, np.dtype(np.int8))


def test_custom_wide_datatype_allowed():
    # A 28-byte type fills the payload exactly with one element per packet.
    wide = SMIDatatype("WIDE", 28, np.dtype([("v", np.uint8, 28)]))
    assert wide.elements_per_packet == 1
    assert wide.packets_for(5) == 5
