"""Tests for credit-based point-to-point flow control (§3.3)."""

import numpy as np
import pytest

from repro import NOCTUA, SMI_INT, SMIProgram, bus
from repro.codegen.metadata import OpDecl
from repro.core.errors import ChannelError

CREDITED_OPS = [OpDecl("send", 0, SMI_INT), OpDecl("recv", 0, SMI_INT)]


def _run_credited(n, window=None, hops=1, receiver_stall=0):
    prog = SMIProgram(bus(max(2, hops + 1)))
    marks = {}

    def sender(smi):
        ch = smi.open_credited_send_channel(n, SMI_INT, hops, 0,
                                            window_packets=window)
        for i in range(n):
            yield from smi.push(ch, i)
        marks["send_end"] = smi.cycle

    def receiver(smi):
        ch = smi.open_credited_recv_channel(n, SMI_INT, 0, 0,
                                            window_packets=window)
        if receiver_stall:
            yield smi.wait(receiver_stall)
        out = []
        for _ in range(n):
            v = yield from smi.pop(ch)
            out.append(int(v))
        smi.store("out", out)

    prog.add_kernel(sender, rank=0, ops=CREDITED_OPS)
    prog.add_kernel(receiver, rank=hops, ops=CREDITED_OPS)
    res = prog.run(max_cycles=10_000_000)
    assert res.completed, res.reason
    return res, marks


def test_credited_transfer_in_order():
    res, _ = _run_credited(100, window=4)
    assert res.store(1, "out") == list(range(100))


def test_credited_multi_hop():
    res, _ = _run_credited(50, window=2, hops=4)
    assert res.store(4, "out") == list(range(50))


def test_credited_window_one():
    # Fully synchronous: one packet in flight at a time. Still correct.
    res, _ = _run_credited(30, window=1)
    assert res.store(1, "out") == list(range(30))


def test_credited_sender_halts_when_receiver_stalls():
    """The §3.3 guarantee: with a stalled receiver, a credited sender stops
    after its window instead of flooding the network."""
    window = 4
    stall = 30_000
    res, marks = _run_credited(700, window=window, receiver_stall=stall)
    # The sender cannot have finished much before the receiver woke up:
    # only `window` packets travel unacknowledged.
    assert marks["send_end"] > stall


def test_eager_sender_runs_ahead():
    """Contrast: an eager sender completes long before a stalled receiver
    wakes, because every downstream buffer absorbs its packets."""
    n = 60  # fits in network + endpoint buffering end to end
    prog = SMIProgram(bus(2))
    marks = {}

    def sender(smi):
        ch = smi.open_send_channel(n, SMI_INT, 1, 0)
        for i in range(n):
            yield from smi.push(ch, i)
        marks["send_end"] = smi.cycle

    def receiver(smi):
        ch = smi.open_recv_channel(n, SMI_INT, 0, 0)
        yield smi.wait(30_000)
        for _ in range(n):
            yield from smi.pop(ch)

    prog.add_kernel(sender, rank=0, ops=[OpDecl("send", 0, SMI_INT)])
    prog.add_kernel(receiver, rank=1, ops=[OpDecl("recv", 0, SMI_INT)])
    res = prog.run(max_cycles=10_000_000)
    assert res.completed
    assert marks["send_end"] < 30_000  # eager: ran ahead of the receiver


def test_credited_protects_bystander_stream():
    """The motivating §3.3 scenario: stream A's receiver stalls. Under the
    eager protocol A's packets head-of-line-block the shared interface and
    delay bystander stream B; under credits, B is unaffected."""

    def run(credited: bool) -> int:
        prog = SMIProgram(bus(2))
        marks = {}
        na, nb = 600, 200
        stall = 25_000

        def sender(smi):
            if credited:
                cha = smi.open_credited_send_channel(na, SMI_INT, 1, 0,
                                                     window_packets=4)
            else:
                cha = smi.open_send_channel(na, SMI_INT, 1, 0)

            def stream_a():
                for i in range(na):
                    yield from smi.push(cha, i)

            smi.engine.spawn(stream_a(), "streamA")
            chb = smi.open_send_channel(nb, SMI_INT, 1, 1)
            for i in range(nb):
                yield from smi.push(chb, i)

        def receiver(smi):
            if credited:
                cha = smi.open_credited_recv_channel(na, SMI_INT, 0, 0,
                                                     window_packets=4)
            else:
                cha = smi.open_recv_channel(na, SMI_INT, 0, 0)
            chb = smi.open_recv_channel(nb, SMI_INT, 0, 1)

            def drain_b():
                for _ in range(nb):
                    yield from smi.pop(chb)
                marks["b_done"] = smi.cycle

            smi.engine.spawn(drain_b(), "drainB")
            yield smi.wait(stall)  # A's consumer sleeps
            for _ in range(na):
                yield from smi.pop(cha)

        ops_a = CREDITED_OPS if credited else [OpDecl("send", 0, SMI_INT)]
        ops_a_recv = CREDITED_OPS if credited else [OpDecl("recv", 0, SMI_INT)]
        prog.add_kernel(sender, rank=0,
                        ops=ops_a + [OpDecl("send", 1, SMI_INT)])
        prog.add_kernel(receiver, rank=1,
                        ops=ops_a_recv + [OpDecl("recv", 1, SMI_INT)])
        res = prog.run(max_cycles=10_000_000)
        assert res.completed, res.reason
        return marks["b_done"]

    b_eager = run(credited=False)
    b_credited = run(credited=True)
    # Under eager, B finishes only after A's consumer wakes (~25k cycles);
    # under credits B flows immediately.
    assert b_credited < 10_000 < b_eager, (b_credited, b_eager)


def test_credited_extractor_declares_both_directions():
    from repro.codegen.extractor import extract_ops

    def kernel(smi):
        ch = smi.open_credited_send_channel(8, SMI_INT, 1, 3)
        yield None

    kinds = {(o.kind, o.port) for o in extract_ops(kernel)}
    assert kinds == {("send", 3), ("recv", 3)}


def test_invalid_window_rejected():
    prog = SMIProgram(bus(2))

    def sender(smi):
        smi.open_credited_send_channel(8, SMI_INT, 1, 0, window_packets=0)
        yield None

    prog.add_kernel(sender, rank=0, ops=CREDITED_OPS)
    with pytest.raises(ChannelError, match="window"):
        prog.run(max_cycles=10_000)
