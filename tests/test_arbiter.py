"""Unit tests for the R-burst polling arbiter (§4.3, Table 4 mechanism)."""

import pytest

from repro.core.errors import SimulationError
from repro.simulation import TICK, Engine, WaitCycles
from repro.transport.arbiter import PollingArbiter


def _run_arbiter(eng, inputs, read_burst, out, stop_after,
                 record_accepts=False):
    """Spawn an arbiter that forwards packets into ``out`` list."""
    arb = PollingArbiter(inputs, read_burst, record_accepts=record_accepts)

    def forward(pkt):
        out.append((eng.cycle, pkt))
        yield TICK

    eng.spawn(arb.run(forward, eng), "arb", daemon=True)
    return arb


def _spawn_drain_waiter(eng, out, n):
    """Keep the simulation alive until ``n`` packets were accepted."""

    def waiter():
        while len(out) < n:
            yield WaitCycles(8)

    eng.spawn(waiter, "drain-waiter")


def test_requires_inputs_and_positive_burst():
    eng = Engine()
    f = eng.fifo("f", capacity=2)
    with pytest.raises(SimulationError):
        PollingArbiter([], 1)
    with pytest.raises(SimulationError):
        PollingArbiter([f], 0)


def test_single_input_sustains_one_per_cycle():
    eng = Engine()
    f = eng.fifo("f", capacity=16)
    out = []
    _run_arbiter(eng, [f], read_burst=8, out=out, stop_after=None)

    def producer():
        for i in range(20):
            yield from f.push(i)

    eng.spawn(producer, "p")
    _spawn_drain_waiter(eng, out, 20)
    eng.run()
    assert len(out) == 20
    gaps = [b[0] - a[0] for a, b in zip(out, out[1:])]
    # With one input there is nothing else to poll: back-to-back accepts.
    assert all(g == 1 for g in gaps[2:])


@pytest.mark.parametrize("R,expected_gap", [(1, 5.0), (4, 2.0), (8, 1.5), (16, 1.25)])
def test_injection_gap_formula_five_inputs(R, expected_gap):
    """One active input among five: average accept gap = (R + 4) / R.

    This is the polling arithmetic underlying Table 4 (5 inputs at a CKS
    with 4 QSFPs: the application, the paired CKR, and 3 other CKS).
    """
    eng = Engine()
    active = eng.fifo("active", capacity=64)
    idles = [eng.fifo(f"idle{i}", capacity=4) for i in range(4)]
    out = []
    _run_arbiter(eng, [active] + idles, read_burst=R, out=out, stop_after=None)

    n = 200

    def producer():
        for i in range(n):
            yield from active.push(i)

    eng.spawn(producer, "p")
    _spawn_drain_waiter(eng, out, n)
    eng.run()
    assert len(out) == n
    # Steady-state average gap (skip warmup).
    cycles = [c for c, _ in out]
    steady = cycles[20:]
    avg = (steady[-1] - steady[0]) / (len(steady) - 1)
    assert avg == pytest.approx(expected_gap, rel=0.1)


def test_round_robin_fairness_two_active():
    eng = Engine()
    a = eng.fifo("a", capacity=64)
    b = eng.fifo("b", capacity=64)
    out = []
    _run_arbiter(eng, [a, b], read_burst=2, out=out, stop_after=None)

    def producer(f, tag, n):
        def proc():
            for i in range(n):
                yield from f.push((tag, i))

        return proc

    eng.spawn(producer(a, "a", 40), "pa")
    eng.spawn(producer(b, "b", 40), "pb")
    _spawn_drain_waiter(eng, out, 80)
    eng.run()
    tags = [pkt[0] for _, pkt in out]
    assert tags.count("a") == 40 and tags.count("b") == 40
    # With burst 2, the arbiter alternates in blocks of at most 2.
    max_run = 1
    run = 1
    for x, y in zip(tags, tags[1:]):
        run = run + 1 if x == y else 1
        max_run = max(max_run, run)
    assert max_run <= 3  # 2 from burst, +1 slack for refill timing


def test_parks_when_all_inputs_idle():
    # The arbiter must not keep the engine busy when nothing is flowing:
    # a worker sleeping 10k cycles should end the run at exactly 10k.
    eng = Engine()
    f1 = eng.fifo("f1", capacity=4)
    f2 = eng.fifo("f2", capacity=4)
    out = []
    _run_arbiter(eng, [f1, f2], read_burst=1, out=out, stop_after=None)

    def worker():
        yield WaitCycles(10_000)

    eng.spawn(worker, "w")
    result = eng.run()
    assert result.cycles == 10_000
    assert out == []


def test_wakeup_charges_scan_distance():
    # After idling, a packet arriving on input k is accepted only after the
    # pointer scans to it — timing matches literal polling hardware.
    eng = Engine()
    inputs = [eng.fifo(f"f{i}", capacity=4) for i in range(5)]
    out = []
    _run_arbiter(eng, inputs, read_burst=1, out=out, stop_after=None)

    def producer():
        yield WaitCycles(100)
        inputs[3].stage("x")
        yield None

    eng.spawn(producer, "p")
    _spawn_drain_waiter(eng, out, 1)
    eng.run()
    assert len(out) == 1
    accept_cycle = out[0][0]
    # Staged at 100, visible at 101; pointer position after the initial
    # scan is deterministic; acceptance happens within a poll round.
    assert 101 <= accept_cycle <= 101 + len(inputs)


def test_accept_counter():
    eng = Engine()
    f = eng.fifo("f", capacity=8)
    out = []
    arb = _run_arbiter(eng, [f], read_burst=4, out=out, stop_after=None,
                       record_accepts=True)

    def producer():
        for i in range(9):
            yield from f.push(i)

    eng.spawn(producer, "p")
    _spawn_drain_waiter(eng, out, 9)
    eng.run()
    assert arb.packets_accepted == 9
    # The opt-in histogram stays bounded: one gap per accept after the
    # first, stored per distinct gap value rather than per packet.
    assert arb.accept_hist is not None
    assert arb.accept_hist.count == 8
    assert arb.accept_hist.mean_gap >= 1.0


def test_accept_recording_off_by_default():
    eng = Engine()
    f = eng.fifo("f", capacity=8)
    arb = PollingArbiter([f], read_burst=4)
    assert arb.accept_hist is None  # no per-packet state unless opted in
