"""Macro-cruise fast-forward: tier-2 exactness and fold-watermark stats.

The whole-program analytical fast-forward (``HardwareConfig.macro_cruise``)
commits long steady-state spans as closed-form Δ-shift extrapolations,
jumping the engine clock in bulk. Two contracts are pinned here:

* **tier-2 A/B exactness** — on the deep-buffer preset at a size where
  the fast-forward demonstrably fires (``ff_bulk_rounds > 0``), the
  macro plane must match the burst and cruise planes bit-for-bit: same
  end cycle, same payload, same per-FIFO push/pop counts and occupancy
  peaks. (The randomized sweep lives in ``test_burst_fuzz.py``; this is
  the deterministic anchor.)

* **fold-watermark soundness** — time-filtered stats queries
  (``Fifo.counts_at`` / ``max_occupancy_at``) interact with the
  occupancy-log fold, whose boundary a bulk clock jump can land far
  past any externally observed cycle. With the engine's
  ``stats_fold_limit`` watermark raised (as the sharded backend does),
  queries at the watermark stay exact even when the fold boundary falls
  inside a fast-forwarded span; without it, queries below an
  already-folded prefix must fail loudly instead of returning lumped
  counts.
"""

import numpy as np
import pytest

from repro import SMI_FLOAT, SMIProgram, noctua_bus
from repro.codegen.metadata import OpDecl
from repro.core.config import hardware_preset
from repro.core.errors import SimulationError
from repro.simulation.stats import collect_planner_stats

DEEP = hardware_preset("noctua-deep")
N = 65536


def _run_stream(config, n=N, width=8, fold_watermark=None, hops=1):
    """Deep-preset p2p stream over ``hops``; returns (result, stats)."""
    prog = SMIProgram(noctua_bus(), config=config)
    data = np.arange(n, dtype=np.float32) % 1024

    def snd(smi):
        if fold_watermark is not None:
            smi.engine.stats_fold_limit = fold_watermark
        ch = smi.open_send_channel(n, SMI_FLOAT, hops, 0)
        yield from ch.push_vec(data, width=width)

    def rcv(smi):
        ch = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
        out = yield from ch.pop_vec(n, width=width)
        smi.store("sum", float(np.sum(out)))
        smi.store("ok", bool(np.array_equal(out, data)))
        smi.store("end", smi.cycle)

    prog.add_kernel(snd, rank=0,
                    ops=[OpDecl("send", 0, SMI_FLOAT, peer=hops)])
    prog.add_kernel(rcv, rank=hops,
                    ops=[OpDecl("recv", 0, SMI_FLOAT, peer=0)])
    res = prog.run(max_cycles=200_000_000)
    assert res.completed, res.reason
    assert res.store(hops, "ok"), "payload mismatch"
    return res, collect_planner_stats(res.transport)


def test_macro_cruise_exact_vs_burst_and_cruise_deep_preset():
    planes = {
        "burst": DEEP.with_(pattern_replication=False),
        "cruise": DEEP,
        "macro": DEEP.with_(macro_cruise=True),
    }
    runs = {name: _run_stream(cfg) for name, cfg in planes.items()}

    macro_stats = runs["macro"][1]
    assert macro_stats.ff_bulk_rounds > 0, "fast-forward never fired"
    assert macro_stats.ff_windows > 0
    assert macro_stats.ff_cycles > 0

    ref, _ = runs["burst"]
    ref_fifos = ref.engine.fifo_stats()
    for name in ("cruise", "macro"):
        res, _ = runs[name]
        assert res.store(1, "end") == ref.store(1, "end"), name
        assert res.cycles == ref.cycles, name
        assert res.store(1, "sum") == ref.store(1, "sum"), name
        fifos = res.engine.fifo_stats()
        for fname, rstats in ref_fifos.items():
            fstats = fifos[fname]
            for key in ("pushes", "pops", "max_occupancy"):
                assert fstats[key] == rstats[key], (name, fname, key)


def test_macro_cruise_arms_on_four_hop_relay_chain():
    """The generalized resolver must arm on a deep multi-hop stream.

    A 4-hop deep stream resolves as one relay chain of 11 pattern
    sessions (each transit rank contributes its CKR plus two CKS
    sessions); the analytic jump must land (``ff_jumps``), span the
    whole chain (``mean_ff_chain_len``), commit bulk rounds, and stay
    bit-for-bit exact against the burst and cruise planes.
    """
    hops, n = 4, 32768
    planes = {
        "burst": DEEP.with_(pattern_replication=False),
        "cruise": DEEP,
        "macro": DEEP.with_(macro_cruise=True),
    }
    runs = {name: _run_stream(cfg, n=n, hops=hops)
            for name, cfg in planes.items()}

    stats = runs["macro"][1]
    assert stats.ff_bulk_rounds > 0, "fast-forward never fired at 4 hops"
    assert stats.ff_jumps >= 1
    assert stats.mean_ff_chain_len >= 3, \
        "jump did not span a multi-session relay chain"

    ref, _ = runs["burst"]
    ref_fifos = ref.engine.fifo_stats()
    for name in ("cruise", "macro"):
        res, _ = runs[name]
        assert res.store(hops, "end") == ref.store(hops, "end"), name
        assert res.cycles == ref.cycles, name
        assert res.store(hops, "sum") == ref.store(hops, "sum"), name
        fifos = res.engine.fifo_stats()
        for fname, rstats in ref_fifos.items():
            fstats = fifos[fname]
            for key in ("pushes", "pops", "max_occupancy"):
                assert fstats[key] == rstats[key], (name, fname, key)


def _run_disjoint_pair(config, n):
    """Two independent p2p streams (0->1 and 2->3) in one program."""
    prog = SMIProgram(noctua_bus(), config=config)
    data_a = np.arange(n, dtype=np.float32) % 1024
    data_b = (np.arange(n, dtype=np.float32) * 3) % 997

    def make_snd(data, peer):
        def snd(smi):
            ch = smi.open_send_channel(n, SMI_FLOAT, peer, 0)
            yield from ch.push_vec(data, width=8)
        return snd

    def make_rcv(data, peer):
        def rcv(smi):
            ch = smi.open_recv_channel(n, SMI_FLOAT, peer, 0)
            out = yield from ch.pop_vec(n, width=8)
            smi.store("ok", bool(np.array_equal(out, data)))
            smi.store("end", smi.cycle)
        return rcv

    prog.add_kernel(make_snd(data_a, 1), rank=0,
                    ops=[OpDecl("send", 0, SMI_FLOAT, peer=1)])
    prog.add_kernel(make_rcv(data_a, 0), rank=1,
                    ops=[OpDecl("recv", 0, SMI_FLOAT, peer=0)])
    prog.add_kernel(make_snd(data_b, 3), rank=2,
                    ops=[OpDecl("send", 0, SMI_FLOAT, peer=3)])
    prog.add_kernel(make_rcv(data_b, 2), rank=3,
                    ops=[OpDecl("recv", 0, SMI_FLOAT, peer=2)])
    res = prog.run(max_cycles=200_000_000)
    assert res.completed, res.reason
    for rank in (1, 3):
        assert res.store(rank, "ok"), f"payload mismatch on rank {rank}"
    return res, collect_planner_stats(res.transport)


def test_macro_cruise_concurrent_disjoint_streams():
    """Two structurally disjoint streams both fast-forward.

    The resolver claims every session and lane into exactly one chain
    per send lane; with two independent streams on disjoint ranks both
    chains arm (one jump each) and the run stays cycle-exact against
    the burst and cruise planes.
    """
    n = 32768
    ref, _ = _run_disjoint_pair(DEEP.with_(pattern_replication=False), n)
    cruise, _ = _run_disjoint_pair(DEEP, n)
    macro, stats = _run_disjoint_pair(DEEP.with_(macro_cruise=True), n)

    assert stats.ff_jumps >= 2, "both disjoint chains should jump"
    assert stats.ff_bulk_rounds > 0
    for rank in (1, 3):
        assert macro.store(rank, "end") == ref.store(rank, "end")
        assert cruise.store(rank, "end") == ref.store(rank, "end")
    assert macro.cycles == cruise.cycles == ref.cycles
    ref_fifos = ref.engine.fifo_stats()
    fifos = macro.engine.fifo_stats()
    for fname, rstats in ref_fifos.items():
        fstats = fifos[fname]
        for key in ("pushes", "pops", "max_occupancy"):
            assert fstats[key] == rstats[key], (fname, key)


def _run_two_port(config, n, chunk=128):
    """Two interleaved flows on one physical path (rank 0 -> rank 1).

    Both channels share every relay session between the ranks, so the
    sessions poll two inputs and demux into two targets — fixed
    pattern shapes the relay-chain resolver permanently refuses. This
    program can never arm the fast-forward, whatever the sweep sees
    later, so the first refusal must disarm probing for good.
    """
    prog = SMIProgram(noctua_bus(), config=config)
    data_a = np.arange(n, dtype=np.float32) % 1024
    data_b = (np.arange(n, dtype=np.float32) * 5) % 811

    def snd(smi):
        ch_a = smi.open_send_channel(n, SMI_FLOAT, 1, 0)
        ch_b = smi.open_send_channel(n, SMI_FLOAT, 1, 1)
        for lo in range(0, n, chunk):
            yield from ch_a.push_vec(data_a[lo:lo + chunk], width=8)
            yield from ch_b.push_vec(data_b[lo:lo + chunk], width=8)

    def rcv(smi):
        ch_a = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
        ch_b = smi.open_recv_channel(n, SMI_FLOAT, 0, 1)
        out_a, out_b = [], []
        for lo in range(0, n, chunk):
            seg = yield from ch_a.pop_vec(chunk, width=8)
            out_a.extend(float(v) for v in seg)
            seg = yield from ch_b.pop_vec(chunk, width=8)
            out_b.extend(float(v) for v in seg)
        smi.store("ok", bool(np.array_equal(out_a, data_a)
                             and np.array_equal(out_b, data_b)))
        smi.store("end", smi.cycle)

    prog.add_kernel(snd, rank=0,
                    ops=[OpDecl("send", 0, SMI_FLOAT, peer=1),
                         OpDecl("send", 1, SMI_FLOAT, peer=1)])
    prog.add_kernel(rcv, rank=1,
                    ops=[OpDecl("recv", 0, SMI_FLOAT, peer=0),
                         OpDecl("recv", 1, SMI_FLOAT, peer=0)])
    res = prog.run(max_cycles=200_000_000)
    assert res.completed, res.reason
    assert res.store(1, "ok"), "payload mismatch"
    return res, collect_planner_stats(res.transport)


def test_macro_no_arm_program_pays_zero_ff_overhead():
    """A permanently un-armable program must disarm probing.

    The shared-path two-port shape can never resolve (its relay
    patterns poll two inputs and stage into two targets, and pattern
    shapes are fixed for the whole train), so the first permanent
    refusal flips ``SupplyPlanner.ff_disarmed``: no fast-forward
    window is ever counted, and the trajectory is identical to plain
    cruise — the macro flag costs nothing here.
    """
    n = 16384
    cruise, _ = _run_two_port(DEEP, n)
    macro, stats = _run_two_port(DEEP.with_(macro_cruise=True), n)

    assert stats.ff_windows == 0, "no-arm program counted an ff window"
    assert stats.ff_jumps == 0
    assert stats.ff_bulk_rounds == 0
    assert macro.store(1, "end") == cruise.store(1, "end")
    assert macro.cycles == cruise.cycles
    # The permanent refusal disarmed the probing machinery for good.
    planners = {
        id(ck.supply_planner): ck.supply_planner
        for rt in macro.transport.ranks.values()
        for ck in list(rt.cks.values()) + list(rt.ckr.values())
    }
    assert any(sp.ff_disarmed for sp in planners.values()), \
        "permanent resolve refusal never disarmed the planner"


def test_counts_at_exact_across_fast_forwarded_fold_boundary():
    """A fold boundary landing inside a fast-forwarded span must not
    corrupt time-filtered stats when the watermark is honoured.

    Both planes pin ``stats_fold_limit`` to a mid-stream cycle (well
    inside the macro plane's steady state, so the surrounding span is
    committed by bulk extrapolation); ``counts_at``/``max_occupancy_at``
    at that watermark must then agree exactly between the per-window
    burst replay and the fast-forwarded run.
    """
    watermark = 10_000
    burst, _ = _run_stream(DEEP.with_(pattern_replication=False),
                           fold_watermark=watermark)
    macro, stats = _run_stream(DEEP.with_(macro_cruise=True),
                               fold_watermark=watermark)
    assert stats.ff_bulk_rounds > 0, "fast-forward never fired"
    assert watermark < macro.cycles

    ref = {f.name: f for f in burst.engine.fifos}
    checked = 0
    for f in macro.engine.fifos:
        r = ref[f.name]
        assert f.counts_at(watermark) == r.counts_at(watermark), f.name
        assert (f.max_occupancy_at(watermark)
                == r.max_occupancy_at(watermark)), f.name
        # End-of-run queries must stay answerable too (the watermark
        # clamps folds below the global end).
        assert f.counts_at(macro.cycles) == r.counts_at(burst.cycles), f.name
        checked += 1
    assert checked > 0


def test_time_filtered_query_below_folded_prefix_raises():
    """Without a watermark, a bulk clock jump folds the occupancy log
    far ahead; queries below the folded prefix must fail loudly."""
    macro, stats = _run_stream(DEEP.with_(macro_cruise=True))
    assert stats.ff_bulk_rounds > 0
    folded = [f for f in macro.engine.fifos if f._occ_folded_through > 2]
    assert folded, "no fifo folded its occupancy log during the bulk run"
    f = max(folded, key=lambda f: f._occ_folded_through)
    with pytest.raises(SimulationError, match="folded through"):
        f.counts_at(f._occ_folded_through - 2)
    with pytest.raises(SimulationError, match="folded through"):
        f.max_occupancy_at(f._occ_folded_through - 2)
