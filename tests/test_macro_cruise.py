"""Macro-cruise fast-forward: tier-2 exactness and fold-watermark stats.

The whole-program analytical fast-forward (``HardwareConfig.macro_cruise``)
commits long steady-state spans as closed-form Δ-shift extrapolations,
jumping the engine clock in bulk. Two contracts are pinned here:

* **tier-2 A/B exactness** — on the deep-buffer preset at a size where
  the fast-forward demonstrably fires (``ff_bulk_rounds > 0``), the
  macro plane must match the burst and cruise planes bit-for-bit: same
  end cycle, same payload, same per-FIFO push/pop counts and occupancy
  peaks. (The randomized sweep lives in ``test_burst_fuzz.py``; this is
  the deterministic anchor.)

* **fold-watermark soundness** — time-filtered stats queries
  (``Fifo.counts_at`` / ``max_occupancy_at``) interact with the
  occupancy-log fold, whose boundary a bulk clock jump can land far
  past any externally observed cycle. With the engine's
  ``stats_fold_limit`` watermark raised (as the sharded backend does),
  queries at the watermark stay exact even when the fold boundary falls
  inside a fast-forwarded span; without it, queries below an
  already-folded prefix must fail loudly instead of returning lumped
  counts.
"""

import numpy as np
import pytest

from repro import SMI_FLOAT, SMIProgram, noctua_bus
from repro.codegen.metadata import OpDecl
from repro.core.config import hardware_preset
from repro.core.errors import SimulationError
from repro.simulation.stats import collect_planner_stats

DEEP = hardware_preset("noctua-deep")
N = 65536


def _run_stream(config, n=N, width=8, fold_watermark=None):
    """1-hop deep-preset p2p stream; returns (result, planner stats)."""
    prog = SMIProgram(noctua_bus(), config=config)
    data = np.arange(n, dtype=np.float32) % 1024

    def snd(smi):
        if fold_watermark is not None:
            smi.engine.stats_fold_limit = fold_watermark
        ch = smi.open_send_channel(n, SMI_FLOAT, 1, 0)
        yield from ch.push_vec(data, width=width)

    def rcv(smi):
        ch = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
        out = yield from ch.pop_vec(n, width=width)
        smi.store("sum", float(np.sum(out)))
        smi.store("ok", bool(np.array_equal(out, data)))
        smi.store("end", smi.cycle)

    prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, SMI_FLOAT, peer=1)])
    prog.add_kernel(rcv, rank=1, ops=[OpDecl("recv", 0, SMI_FLOAT, peer=0)])
    res = prog.run(max_cycles=200_000_000)
    assert res.completed, res.reason
    assert res.store(1, "ok"), "payload mismatch"
    return res, collect_planner_stats(res.transport)


def test_macro_cruise_exact_vs_burst_and_cruise_deep_preset():
    planes = {
        "burst": DEEP.with_(pattern_replication=False),
        "cruise": DEEP,
        "macro": DEEP.with_(macro_cruise=True),
    }
    runs = {name: _run_stream(cfg) for name, cfg in planes.items()}

    macro_stats = runs["macro"][1]
    assert macro_stats.ff_bulk_rounds > 0, "fast-forward never fired"
    assert macro_stats.ff_windows > 0
    assert macro_stats.ff_cycles > 0

    ref, _ = runs["burst"]
    ref_fifos = ref.engine.fifo_stats()
    for name in ("cruise", "macro"):
        res, _ = runs[name]
        assert res.store(1, "end") == ref.store(1, "end"), name
        assert res.cycles == ref.cycles, name
        assert res.store(1, "sum") == ref.store(1, "sum"), name
        fifos = res.engine.fifo_stats()
        for fname, rstats in ref_fifos.items():
            fstats = fifos[fname]
            for key in ("pushes", "pops", "max_occupancy"):
                assert fstats[key] == rstats[key], (name, fname, key)


def test_counts_at_exact_across_fast_forwarded_fold_boundary():
    """A fold boundary landing inside a fast-forwarded span must not
    corrupt time-filtered stats when the watermark is honoured.

    Both planes pin ``stats_fold_limit`` to a mid-stream cycle (well
    inside the macro plane's steady state, so the surrounding span is
    committed by bulk extrapolation); ``counts_at``/``max_occupancy_at``
    at that watermark must then agree exactly between the per-window
    burst replay and the fast-forwarded run.
    """
    watermark = 10_000
    burst, _ = _run_stream(DEEP.with_(pattern_replication=False),
                           fold_watermark=watermark)
    macro, stats = _run_stream(DEEP.with_(macro_cruise=True),
                               fold_watermark=watermark)
    assert stats.ff_bulk_rounds > 0, "fast-forward never fired"
    assert watermark < macro.cycles

    ref = {f.name: f for f in burst.engine.fifos}
    checked = 0
    for f in macro.engine.fifos:
        r = ref[f.name]
        assert f.counts_at(watermark) == r.counts_at(watermark), f.name
        assert (f.max_occupancy_at(watermark)
                == r.max_occupancy_at(watermark)), f.name
        # End-of-run queries must stay answerable too (the watermark
        # clamps folds below the global end).
        assert f.counts_at(macro.cycles) == r.counts_at(burst.cycles), f.name
        checked += 1
    assert checked > 0


def test_time_filtered_query_below_folded_prefix_raises():
    """Without a watermark, a bulk clock jump folds the occupancy log
    far ahead; queries below the folded prefix must fail loudly."""
    macro, stats = _run_stream(DEEP.with_(macro_cruise=True))
    assert stats.ff_bulk_rounds > 0
    folded = [f for f in macro.engine.fifos if f._occ_folded_through > 2]
    assert folded, "no fifo folded its occupancy log during the bulk run"
    f = max(folded, key=lambda f: f._occ_folded_through)
    with pytest.raises(SimulationError, match="folded through"):
        f.counts_at(f._occ_folded_through - 2)
    with pytest.raises(SimulationError, match="folded through"):
        f.max_occupancy_at(f._occ_folded_through - 2)
