"""Tests for the FPGA resource model: Tables 1 and 2 must reproduce exactly."""

import pytest

from repro.core.errors import ConfigurationError
from repro.resources import (
    BCAST_KERNEL,
    REDUCE_KERNEL_FP32_SUM,
    STRATIX10_GX2800,
    ResourceVector,
    estimate,
    table1,
    table2,
)


def test_table1_1qsfp_exact():
    est = estimate(qsfps=1)
    assert est.interconnect.luts == 144
    assert est.interconnect.ffs == 4872
    assert est.interconnect.m20ks == 0
    assert est.comm_kernels.luts == 6186
    assert est.comm_kernels.ffs == 7189
    assert est.comm_kernels.m20ks == 10


def test_table1_4qsfp_exact():
    est = estimate(qsfps=4)
    assert est.interconnect.luts == 1152
    assert est.interconnect.ffs == 39264
    assert est.interconnect.m20ks == 0
    assert est.comm_kernels.luts == 30960
    assert est.comm_kernels.ffs == 31072
    assert est.comm_kernels.m20ks == 40


def test_table1_percent_of_max():
    # Paper: 4 QSFPs row is 1.7% LUTs, 1.9% FFs, 0.3% M20Ks.
    t = table1()
    assert t["4 QSFPs"]["pct_luts"] == pytest.approx(1.7, abs=0.05)
    assert t["4 QSFPs"]["pct_ffs"] == pytest.approx(1.9, abs=0.05)
    assert t["4 QSFPs"]["pct_m20ks"] == pytest.approx(0.3, abs=0.05)
    # 1 QSFP row: 0.3% LUTs, 0.7% FFs (paper, rounded to one decimal).
    assert t["1 QSFP"]["pct_luts"] == pytest.approx(0.3, abs=0.05)
    assert t["1 QSFP"]["pct_ffs"] == pytest.approx(0.7, abs=0.4)


def test_resource_growth_faster_than_linear():
    # §5.2: "The number of used resources grows slightly faster than linear."
    one = estimate(1).transport_total
    four = estimate(4).transport_total
    assert four.luts > 4 * one.luts
    assert four.ffs > 4 * one.ffs
    # ...but not wildly: within ~2x of linear.
    assert four.luts < 8 * one.luts


def test_intermediate_qsfp_counts_monotone():
    totals = [estimate(q).transport_total.luts for q in (1, 2, 3, 4)]
    assert totals == sorted(totals)
    assert len(set(totals)) == 4


def test_table2_exact():
    t = table2()
    assert t["Broadcast"]["luts"] == 2560
    assert t["Broadcast"]["ffs"] == 3593
    assert t["Broadcast"]["dsps"] == 0
    assert t["Reduce (FP32 SUM)"]["luts"] == 10268
    assert t["Reduce (FP32 SUM)"]["ffs"] == 14648
    assert t["Reduce (FP32 SUM)"]["dsps"] == 6
    # Percent columns: paper reports 0.1% LUTs for Bcast, 0.6% for Reduce.
    assert t["Broadcast"]["pct_luts"] == pytest.approx(0.1, abs=0.05)
    assert t["Reduce (FP32 SUM)"]["pct_luts"] == pytest.approx(0.6, abs=0.05)
    assert t["Reduce (FP32 SUM)"]["pct_dsps"] == pytest.approx(0.1, abs=0.05)


def test_total_overhead_insignificant():
    # §5.2: "the resource overhead of SMI is insignificant, amounting to
    # less than 2% of the total chip resources" (the transport of Table 1).
    est = estimate(4)
    transport = est.transport_total
    assert est.chip.fraction("luts", transport.luts) < 0.02
    assert est.chip.fraction("ffs", transport.ffs) < 0.02
    # Even with collective support kernels it stays marginal (< 3%).
    full = estimate(4, collectives={"bcast": 1, "reduce": 1})
    fr = full.fractions()
    assert fr["luts"] < 0.03
    assert fr["ffs"] < 0.03


def test_extra_endpoints_cost_more():
    base = estimate(4, endpoints_per_pair=1).transport_total
    more = estimate(4, endpoints_per_pair=2).transport_total
    assert more.luts > base.luts
    assert more.ffs > base.ffs


def test_chip_capacities():
    chip = STRATIX10_GX2800
    assert chip.luts == 2 * chip.alms
    assert chip.ffs == 4 * chip.alms
    assert chip.m20ks == 11_721
    assert chip.dsps == 5_760
    with pytest.raises(ConfigurationError):
        chip.fraction("qubits", 1)


def test_resource_vector_arithmetic():
    a = ResourceVector(1, 2, 3, 4)
    b = ResourceVector(10, 20, 30, 40)
    s = a + b
    assert (s.luts, s.ffs, s.m20ks, s.dsps) == (11, 22, 33, 44)
    d = a.scaled(2)
    assert (d.luts, d.ffs, d.m20ks, d.dsps) == (2, 4, 6, 8)


def test_invalid_estimates_rejected():
    with pytest.raises(ConfigurationError):
        estimate(0)
    with pytest.raises(ConfigurationError):
        estimate(5)
    with pytest.raises(ConfigurationError):
        estimate(2, endpoints_per_pair=0)
    with pytest.raises(ConfigurationError):
        estimate(2, collectives={"alltoall": 1})


def test_collective_kernels_add_dsps():
    est = estimate(1, collectives={"reduce": 2})
    assert est.collectives.dsps == 12
    assert est.total.dsps == 12
