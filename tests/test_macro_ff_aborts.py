"""Deterministic abort-path coverage for the macro-cruise guard battery.

The analytic jump (``ff_apply`` in :mod:`repro.transport.planner`) only
commits after a battery of guards proves the extrapolation sound along
the whole relay chain: per-hop element conservation, release/readiness
lattice checks, the closed-form horizon/budget bounds (min over the
chain), and per-hop slot-release caps. The randomized fuzz sweep
(``tests/test_burst_fuzz.py``) perturbs these paths stochastically;
this module drives each guard *deterministically* through the
``planner._ff_guard_probe`` test seam — a probe that forces a chosen
guard at a chosen hop to report failure — and pins the contract that a
refused jump falls back to per-packet replication with bit-identical
cycles and FIFO trajectories.

The vetoed run must also never count a jump (``ff_jumps == 0``): a
guard refusal aborts the whole analytic commit, not just a bound.
"""

import numpy as np
import pytest

from repro import SMI_FLOAT, SMIProgram, noctua_bus
from repro.codegen.metadata import OpDecl
from repro.core.config import hardware_preset
from repro.simulation.stats import collect_planner_stats
from repro.transport import planner as planner_mod

DEEP = hardware_preset("noctua-deep")
MACRO = DEEP.with_(macro_cruise=True)
N = 16384
HOPS = 4
#: A 4-hop chain resolves as 11 relay sessions (hop indices 0..10):
#: each transit rank contributes CKR -> CKS -> CKS.
LAST_HOP = 10


def _run(config, n=N, hops=HOPS, probe=None):
    """One deep p2p stream with the guard probe installed for the run."""
    prog = SMIProgram(noctua_bus(), config=config)
    data = np.arange(n, dtype=np.float32) % 1024

    def snd(smi):
        ch = smi.open_send_channel(n, SMI_FLOAT, hops, 0)
        yield from ch.push_vec(data, width=8)

    def rcv(smi):
        ch = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
        out = yield from ch.pop_vec(n, width=8)
        smi.store("ok", bool(np.array_equal(out, data)))
        smi.store("end", smi.cycle)

    prog.add_kernel(snd, rank=0,
                    ops=[OpDecl("send", 0, SMI_FLOAT, peer=hops)])
    prog.add_kernel(rcv, rank=hops,
                    ops=[OpDecl("recv", 0, SMI_FLOAT, peer=0)])
    assert planner_mod._ff_guard_probe is None
    planner_mod._ff_guard_probe = probe
    try:
        res = prog.run(max_cycles=200_000_000)
    finally:
        planner_mod._ff_guard_probe = None
    assert res.completed, res.reason
    assert res.store(hops, "ok"), "payload mismatch"
    return res, collect_planner_stats(res.transport)


def _veto(guard, hop):
    """A probe failing ``guard`` at ``hop`` (any hop when ``None``),
    plus the list of (guard, hop) sites it actually fired at."""
    fired = []

    def probe(g, h):
        if g == guard and (hop is None or h == hop):
            fired.append((g, h))
            return True
        return False

    return probe, fired


@pytest.fixture(scope="module")
def reference():
    """Plain-cruise trajectory plus the un-vetoed macro precondition."""
    ref, _ = _run(DEEP)
    macro, stats = _run(MACRO)
    assert stats.ff_jumps >= 1, "precondition: jump must land un-vetoed"
    assert macro.cycles == ref.cycles
    return ref


@pytest.mark.parametrize("guard,hop", [
    ("conservation", 1),    # element-conservation miss, interior hop
    ("slots", 5),           # frozen release before a mid-chain cursor
    ("horizon", LAST_HOP),  # observation-horizon cap on the last hop
    ("rel-lattice", -1),    # off-lattice sender release (chain-wide)
    ("recv-lattice", -1),   # off-lattice recv-lane readiness
    ("budget", -1),         # closed-form take-budget floor
    ("standing", 0),        # frozen standing backlog on the first hop
])
def test_guard_veto_falls_back_bit_identical(reference, guard, hop):
    probe, fired = _veto(guard, hop)
    vetoed, stats = _run(MACRO, probe=probe)

    assert fired, f"guard site {guard!r}@{hop} was never consulted"
    assert all(g == guard for g, _h in fired)
    if hop != -1:
        assert any(h == hop for _g, h in fired)
    assert stats.ff_jumps == 0, "vetoed guard must abort the jump"
    assert stats.ff_bulk_rounds == 0

    # Bit-identical per-packet fallback: same end cycle, same per-FIFO
    # push/pop counts and occupancy peaks as plain cruise.
    assert vetoed.store(HOPS, "end") == reference.store(HOPS, "end")
    assert vetoed.cycles == reference.cycles
    ref_fifos = reference.engine.fifo_stats()
    fifos = vetoed.engine.fifo_stats()
    for fname, rstats in ref_fifos.items():
        fstats = fifos[fname]
        for key in ("pushes", "pops", "max_occupancy"):
            assert fstats[key] == rstats[key], (fname, key)


def test_probe_observes_every_hop_of_the_chain():
    """A passive probe (never vetoes) sees per-hop guards consulted at
    every chain position, pinning the chain length the battery walks."""
    seen = []

    def probe(g, h):
        seen.append((g, h))
        return False

    _res, stats = _run(MACRO, probe=probe)
    assert stats.ff_jumps >= 1
    cons_hops = {h for g, h in seen if g == "conservation"}
    assert cons_hops == set(range(LAST_HOP + 1)), \
        "conservation guard must walk every hop of the 4-hop chain"
    assert {h for g, h in seen if g == "horizon"} == cons_hops
    assert {g for g, _h in seen} >= {
        "conservation", "rel-lattice", "budget", "horizon",
        "standing", "recv-lattice", "slots",
    }
