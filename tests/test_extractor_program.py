"""Tests for AST metadata extraction and the SMIProgram workflow (§4.5)."""

import pytest

from repro import (
    SMI_ADD,
    SMI_FLOAT,
    SMI_INT,
    CodegenError,
    ConfigurationError,
    SMIProgram,
    bus,
)
from repro.codegen.extractor import extract_ops
from repro.codegen.metadata import OpDecl

PORT_WEST = 1  # module-level constant, resolvable by the extractor


def test_extracts_send_and_recv():
    def kernel(smi):
        chs = smi.open_send_channel(10, SMI_INT, 1, 0)
        chr_ = smi.open_recv_channel(10, SMI_FLOAT, 0, 2)
        yield None

    ops = extract_ops(kernel)
    kinds = {(o.kind, o.port, o.dtype.name) for o in ops}
    assert kinds == {("send", 0, "SMI_INT"), ("recv", 2, "SMI_FLOAT")}


def test_extracts_collectives_with_reduce_op():
    def kernel(smi):
        b = smi.open_bcast_channel(4, SMI_FLOAT, 0, 0)
        r = smi.open_reduce_channel(4, SMI_FLOAT, SMI_ADD, 1, 0)
        s = smi.open_scatter_channel(4, SMI_INT, 2, 0)
        g = smi.open_gather_channel(4, SMI_INT, 3, 0)
        yield None

    ops = {o.kind: o for o in extract_ops(kernel)}
    assert set(ops) == {"bcast", "reduce", "scatter", "gather"}
    assert ops["reduce"].reduce_op is SMI_ADD
    assert ops["bcast"].port == 0 and ops["gather"].port == 3


def test_extracts_module_level_constant_port():
    def kernel(smi):
        ch = smi.open_recv_channel(8, SMI_INT, 0, PORT_WEST)
        yield None

    ops = extract_ops(kernel)
    assert ops[0].port == PORT_WEST


def test_extracts_closure_constant_port():
    port = 7

    def kernel(smi):
        ch = smi.open_send_channel(8, SMI_INT, 1, port)
        yield None

    ops = extract_ops(kernel)
    assert ops[0].port == 7


def test_extracts_keyword_arguments():
    def kernel(smi):
        ch = smi.open_send_channel(8, dtype=SMI_INT, destination=1, port=4)
        yield None

    ops = extract_ops(kernel)
    assert ops[0].port == 4 and ops[0].dtype is SMI_INT


def test_dedupes_repeated_opens():
    def kernel(smi):
        for t in range(4):  # reopened per timestep, like the stencil
            ch = smi.open_recv_channel(8, SMI_INT, 0, 1)
            yield None

    ops = extract_ops(kernel)
    assert len(ops) == 1


def test_dynamic_port_rejected_with_hint():
    def kernel(smi):
        for p in range(4):
            ch = smi.open_send_channel(8, SMI_INT, 1, p)  # non-constant port
            yield None

    with pytest.raises(CodegenError, match="compile-time constants"):
        extract_ops(kernel)


def test_negative_literal_resolves():
    def kernel(smi):
        ch = smi.open_send_channel(8, SMI_INT, 1, -1)  # silly but resolvable
        yield None

    with pytest.raises(CodegenError):  # OpDecl rejects port -1
        extract_ops(kernel)


def test_program_extraction_end_to_end():
    """The full Fig. 8 flow with no explicit ops: AST extraction drives
    transport generation."""
    prog = SMIProgram(bus(2))
    n = 14

    @prog.kernel(rank=0)
    def sender(smi):
        ch = smi.open_send_channel(n, SMI_INT, 1, 0)
        for i in range(n):
            yield from smi.push(ch, i)

    @prog.kernel(rank=1)
    def receiver(smi):
        ch = smi.open_recv_channel(n, SMI_INT, 0, 0)
        out = []
        for _ in range(n):
            v = yield from smi.pop(ch)
            out.append(int(v))
        smi.store("out", out)

    plan = prog.build_plan()
    assert plan.total_ops() == 2
    res = prog.run(max_cycles=100_000)
    assert res.completed
    assert res.store(1, "out") == list(range(n))


def test_spmd_kernel_instantiated_on_all_ranks():
    prog = SMIProgram(bus(3))

    @prog.kernel(ranks="all")
    def kernel(smi):
        smi.store("rank_seen", smi.rank)
        yield None

    res = prog.run(max_cycles=1000)
    assert res.completed
    for r in range(3):
        assert res.store(r, "rank_seen") == r


def test_kernel_rank_out_of_range():
    prog = SMIProgram(bus(2))
    with pytest.raises(ConfigurationError, match="out of range"):
        prog.add_kernel(lambda smi: iter(()), rank=5)


def test_both_rank_and_ranks_rejected():
    prog = SMIProgram(bus(2))
    with pytest.raises(ConfigurationError):
        prog.add_kernel(lambda smi: iter(()), rank=0, ranks=[1])


def test_program_without_kernels_rejected():
    prog = SMIProgram(bus(2))
    with pytest.raises(ConfigurationError, match="no kernels"):
        prog.run()


def test_program_returns_kernel_results():
    prog = SMIProgram(bus(2))

    @prog.kernel(rank=0, ops=[])
    def worker(smi):
        yield None
        return 42

    res = prog.run(max_cycles=1000)
    assert res.returns[("worker", 0)] == 42


def test_manual_declares_merge_with_extraction():
    prog = SMIProgram(bus(2))

    @prog.kernel(rank=0, ops=[OpDecl("send", 0, SMI_INT)])
    def sender(smi):
        ch = smi.open_send_channel(7, SMI_INT, 1, 0)
        for i in range(7):
            yield from smi.push(ch, i)

    prog.declare(1, OpDecl("recv", 0, SMI_INT))

    @prog.kernel(rank=1, ops=[])
    def receiver(smi):
        ch = smi.open_recv_channel(7, SMI_INT, 0, 0)
        out = []
        for _ in range(7):
            v = yield from smi.pop(ch)
            out.append(int(v))
        smi.store("out", out)

    res = prog.run(max_cycles=100_000)
    assert res.completed
    assert res.store(1, "out") == list(range(7))


def test_elapsed_us_consistent_with_cycles():
    prog = SMIProgram(bus(2))

    @prog.kernel(rank=0, ops=[])
    def idler(smi):
        yield smi.wait(31250)  # 100 us at the 312.5 MHz kernel clock

    res = prog.run(max_cycles=100_000)
    assert res.elapsed_us == pytest.approx(100.0)
