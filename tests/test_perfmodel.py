"""Validation of the analytical performance model against the simulator.

This is the load-bearing test for the benchmark methodology: figures use
the cycle simulator for small/medium sizes and the closed-form model for
paper-scale points, so the two must agree on the overlap.
"""

import numpy as np
import pytest

from repro import NOCTUA, SMI_FLOAT, SMI_INT, SMIProgram, bus, noctua_torus
from repro.codegen.metadata import OpDecl
from repro.perfmodel import (
    bcast_cycles,
    injection_gap_cycles,
    p2p_bandwidth_gbps,
    p2p_latency_us,
    p2p_stream,
    packet_gap_cycles,
    reduce_cycles,
)


# ---------------------------------------------------------------------
# Simulator measurement helpers
# ---------------------------------------------------------------------
def simulate_stream_cycles(n, hops, dtype=SMI_FLOAT, width=8):
    prog = SMIProgram(bus(8))
    marks = {}

    def snd(smi):
        ch = smi.open_send_channel(n, dtype, hops, 0)
        data = np.zeros(n, dtype=dtype.np_dtype)
        yield from ch.push_vec(data, width=width)

    def rcv(smi):
        ch = smi.open_recv_channel(n, dtype, 0, 0)
        yield from ch.pop_vec(n, width=width)
        marks["end"] = smi.cycle

    prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, dtype)])
    prog.add_kernel(rcv, rank=hops, ops=[OpDecl("recv", 0, dtype)])
    res = prog.run(max_cycles=50_000_000)
    assert res.completed, res.reason
    return marks["end"]


def simulate_bcast_cycles(n, num_ranks, topology):
    prog = SMIProgram(topology)
    marks = {}

    def kernel(smi):
        chan = smi.open_bcast_channel(n, SMI_FLOAT, 0, 0)
        for i in range(n):
            yield from chan.bcast(float(i) if smi.rank == 0 else None)
        marks[smi.rank] = smi.cycle

    prog.add_kernel(kernel, ranks="all", ops=[OpDecl("bcast", 0, SMI_FLOAT)])
    res = prog.run(max_cycles=50_000_000)
    assert res.completed, res.reason
    return max(marks.values())


# ---------------------------------------------------------------------
# Point-to-point agreement
# ---------------------------------------------------------------------
@pytest.mark.parametrize("n,hops", [(64, 1), (1024, 1), (4096, 1),
                                    (1024, 4), (1024, 7), (8192, 3)])
def test_stream_model_matches_simulator(n, hops):
    sim = simulate_stream_cycles(n, hops)
    model = p2p_stream(n, SMI_FLOAT, hops, NOCTUA, app_width=8).cycles
    assert model == pytest.approx(sim, rel=0.10), (sim, model)


def test_latency_model_matches_table3_scale():
    # The model should land near the calibrated simulator (Table 3 values).
    assert p2p_latency_us(1, NOCTUA) == pytest.approx(0.801, rel=0.1)
    assert p2p_latency_us(4, NOCTUA) == pytest.approx(2.896, rel=0.1)
    assert p2p_latency_us(7, NOCTUA) == pytest.approx(5.103, rel=0.1)


def test_bandwidth_model_saturates_at_payload_peak():
    bw_small = p2p_bandwidth_gbps(256, SMI_FLOAT, 1, NOCTUA)
    bw_large = p2p_bandwidth_gbps(1 << 22, SMI_FLOAT, 1, NOCTUA)
    assert bw_small < bw_large
    assert bw_large <= 35.0
    assert bw_large > 0.9 * 35.0


def test_bandwidth_model_hop_invariant_at_large_sizes():
    # Fig. 9: "larger network distance does not affect the achieved
    # bandwidth" for streamed messages.
    big = 1 << 22
    bw1 = p2p_bandwidth_gbps(big, SMI_FLOAT, 1, NOCTUA)
    bw7 = p2p_bandwidth_gbps(big, SMI_FLOAT, 7, NOCTUA)
    assert bw7 == pytest.approx(bw1, rel=0.01)


def test_app_width_one_limits_bandwidth():
    # An unvectorised app pushes 1 element/cycle: 4 B * 312.5 MHz = 10 Gb/s.
    bw = p2p_bandwidth_gbps(1 << 20, SMI_FLOAT, 1, NOCTUA, app_width=1)
    assert bw == pytest.approx(10.0, rel=0.05)


def test_packet_gap_bottlenecks():
    # Vectorised app: the link slot (2 cycles/packet) is the bottleneck.
    assert packet_gap_cycles(NOCTUA, SMI_FLOAT, app_width=8) == 2.0
    # Narrow app: element packing dominates (7 cycles per 7-element packet).
    assert packet_gap_cycles(NOCTUA, SMI_FLOAT, app_width=1) == 7.0
    # R=1 polling starves the CKS: (1+4)/1 = 5 cycles per packet.
    assert packet_gap_cycles(NOCTUA.with_(read_burst=1), SMI_FLOAT, 8) == 5.0


def test_injection_gap_formula():
    assert injection_gap_cycles(NOCTUA.with_(read_burst=1)) == 5.0
    assert injection_gap_cycles(NOCTUA.with_(read_burst=4)) == 2.0
    assert injection_gap_cycles(NOCTUA.with_(read_burst=8)) == 1.5
    assert injection_gap_cycles(NOCTUA.with_(read_burst=16)) == 1.25


# ---------------------------------------------------------------------
# Collective agreement
# ---------------------------------------------------------------------
@pytest.mark.parametrize("n,ranks", [(128, 4), (512, 4), (512, 8)])
def test_bcast_model_matches_simulator(n, ranks):
    from repro.network.topology import torus2d

    topology = torus2d(2, 2) if ranks == 4 else noctua_torus()
    sim = simulate_bcast_cycles(n, ranks, topology)
    hop_mat = topology.hop_matrix()
    chain = np.mean([hop_mat[r][r + 1] for r in range(ranks - 1)])
    model = bcast_cycles(n, SMI_FLOAT, ranks, chain, NOCTUA)
    if ranks == 8:
        # On the larger torus, consecutive relays ride distinct physical
        # links and their READY/data round trips partially overlap; the
        # serialized-relay model is a conservative upper bound there
        # (it is exact on bus chains — see test_perfmodel_checked.py).
        assert sim <= model <= 1.35 * sim, (sim, model)
    else:
        assert model == pytest.approx(sim, rel=0.25), (sim, model)


def test_reduce_model_shape():
    # Root-bound linear reduction: roughly linear in count and in ranks.
    t1 = reduce_cycles(10_000, SMI_FLOAT, 4, 2, NOCTUA)
    t2 = reduce_cycles(20_000, SMI_FLOAT, 4, 2, NOCTUA)
    assert t2 == pytest.approx(2 * t1, rel=0.15)
    # Rank scaling of the root's combine work: isolate it from credit
    # stalls by making the tile as large as the message, and compare
    # communicators large enough to be root-bound (small ones are paced
    # by the combining kernel's per-packet turnaround instead).
    big_credit = NOCTUA.with_(reduce_credits=10_000)
    t8 = reduce_cycles(10_000, SMI_FLOAT, 8, 2, big_credit)
    t16 = reduce_cycles(10_000, SMI_FLOAT, 16, 2, big_credit)
    assert t16 > 1.8 * t8


def test_reduce_model_latency_sensitivity():
    # §5.3.4: completion time increases with network diameter (credit RTT).
    small_net = reduce_cycles(100_000, SMI_FLOAT, 8, 2, NOCTUA)
    big_net = reduce_cycles(100_000, SMI_FLOAT, 8, 7, NOCTUA)
    assert big_net > small_net


def test_reduce_model_credit_tile_effect():
    # More credits => fewer stalls => faster.
    few = reduce_cycles(100_000, SMI_FLOAT, 8, 3, NOCTUA.with_(reduce_credits=64))
    many = reduce_cycles(100_000, SMI_FLOAT, 8, 3, NOCTUA.with_(reduce_credits=1024))
    assert many < few


# ---------------------------------------------------------------------
# Scatter / Gather models
# ---------------------------------------------------------------------
def simulate_scatter_cycles(n, topology):
    from repro.codegen.metadata import OpDecl

    prog = SMIProgram(topology)
    marks = {}

    def kernel(smi):
        chan = smi.open_scatter_channel(n, SMI_INT, 0, 0)
        if smi.rank == 0:
            yield from chan.stream_root(list(range(topology.num_ranks * n)))
        else:
            for _ in range(n):
                yield from chan.pop()
        marks[smi.rank] = smi.cycle

    prog.add_kernel(kernel, ranks="all", ops=[OpDecl("scatter", 0, SMI_INT)])
    res = prog.run(max_cycles=50_000_000)
    assert res.completed, res.reason
    return max(marks.values())


def test_scatter_model_matches_simulator():
    from repro.network.topology import torus2d
    from repro.perfmodel import scatter_cycles

    topology = torus2d(2, 2)
    n = 256
    sim = simulate_scatter_cycles(n, topology)
    hops = np.mean([topology.hop_matrix()[0][d] for d in range(1, 4)])
    model = scatter_cycles(n, SMI_INT, 4, hops, NOCTUA)
    assert model == pytest.approx(sim, rel=0.35), (sim, model)


def test_gather_model_linear_in_ranks():
    from repro.perfmodel import gather_cycles

    t4 = gather_cycles(1000, SMI_INT, 4, 2, NOCTUA)
    t8 = gather_cycles(1000, SMI_INT, 8, 2, NOCTUA)
    # Root receives (P-1) sequential segments: roughly linear growth.
    assert 1.5 < (t8 - 1000) / max(1, (t4 - 1000)) < 3.0


def test_scatter_gather_models_zero_count():
    from repro.perfmodel import gather_cycles, scatter_cycles

    assert scatter_cycles(0, SMI_INT, 4, 2, NOCTUA) == 0.0
    assert gather_cycles(0, SMI_INT, 4, 2, NOCTUA) == 0.0
