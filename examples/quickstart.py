"""Quickstart: the paper's Listing 1 — an MPMD program with two ranks.

Rank 0 streams a message of N integer elements to rank 1 using a send
channel; rank 1 opens a receive channel and applies a computation to each
data item, one element per clock cycle. Run with::

    python examples/quickstart.py
"""

from repro import NOCTUA, SMI_INT, SMIProgram, bus

N = 128


def main() -> None:
    # Two FPGAs wired back-to-back (a 2-node "cluster").
    prog = SMIProgram(bus(2), config=NOCTUA)

    @prog.kernel(rank=0)
    def rank0(smi):
        # SMI_Open_send_channel(N, SMI_INT, destination=1, port=0, COMM_WORLD)
        chs = smi.open_send_channel(N, SMI_INT, destination=1, port=0)
        for i in range(N):
            data = i * i  # create or load interesting data
            yield from smi.push(chs, data)  # SMI_Push: pipelined, II=1

    @prog.kernel(rank=1)
    def rank1(smi):
        chr_ = smi.open_recv_channel(N, SMI_INT, source=0, port=0)
        total = 0
        for _ in range(N):
            data = yield from smi.pop(chr_)  # SMI_Pop: blocking, II=1
            total += int(data)  # ...do something useful with data...
        smi.store("sum", total)

    result = prog.run()
    expected = sum(i * i for i in range(N))
    got = result.store(1, "sum")
    print(f"rank 1 received and summed {N} elements: {got} "
          f"(expected {expected})")
    print(f"simulated time: {result.elapsed_us:.2f} us "
          f"({result.cycles} cycles at {NOCTUA.clock_hz/1e6:.2f} MHz)")
    print(f"route taken: {result.routes.path(0, 1)} "
          f"({result.routes.hops(0, 1)} hop)")
    assert got == expected


if __name__ == "__main__":
    main()
