"""Advanced flow control: credited channels and tree collectives.

Demonstrates the two protocol extensions beyond the paper's reference
implementation:

1. §3.3's credit-based point-to-point flow control — a stalled receiver
   idles its sender instead of head-of-line-blocking a bystander stream
   that shares the same network interface;
2. §4.4's suggested tree-based collective schema — lower small-message
   broadcast latency and a decongested reduce root.

Run with::

    python examples/flow_control.py
"""

from repro import NOCTUA, SMI_ADD, SMI_FLOAT, SMI_INT, SMIProgram, bus, noctua_torus
from repro.codegen.metadata import OpDecl

CREDITED_OPS = [OpDecl("send", 0, SMI_INT), OpDecl("recv", 0, SMI_INT)]


def bystander_completion_cycles(credited: bool) -> int:
    """Stream A's receiver sleeps; when does bystander stream B finish?"""
    prog = SMIProgram(bus(2))
    marks = {}
    na, nb, stall = 600, 200, 25_000

    def sender(smi):
        if credited:
            cha = smi.open_credited_send_channel(na, SMI_INT, 1, 0,
                                                 window_packets=4)
        else:
            cha = smi.open_send_channel(na, SMI_INT, 1, 0)

        def stream_a():
            for i in range(na):
                yield from smi.push(cha, i)

        smi.engine.spawn(stream_a(), "streamA")
        chb = smi.open_send_channel(nb, SMI_INT, 1, 1)
        for i in range(nb):
            yield from smi.push(chb, i)

    def receiver(smi):
        if credited:
            cha = smi.open_credited_recv_channel(na, SMI_INT, 0, 0,
                                                 window_packets=4)
        else:
            cha = smi.open_recv_channel(na, SMI_INT, 0, 0)
        chb = smi.open_recv_channel(nb, SMI_INT, 0, 1)

        def drain_b():
            for _ in range(nb):
                yield from smi.pop(chb)
            marks["b_done"] = smi.cycle

        smi.engine.spawn(drain_b(), "drainB")
        yield smi.wait(stall)  # stream A's consumer is busy elsewhere
        for _ in range(na):
            yield from smi.pop(cha)

    ops_dir = CREDITED_OPS if credited else None
    prog.add_kernel(sender, rank=0, ops=(
        (ops_dir or [OpDecl("send", 0, SMI_INT)]) + [OpDecl("send", 1, SMI_INT)]
    ))
    prog.add_kernel(receiver, rank=1, ops=(
        (ops_dir or [OpDecl("recv", 0, SMI_INT)]) + [OpDecl("recv", 1, SMI_INT)]
    ))
    res = prog.run()
    assert res.completed
    return marks["b_done"]


def collective_cycles(kind: str, scheme: str, n: int) -> int:
    prog = SMIProgram(noctua_torus())
    marks = {}

    def kernel(smi):
        if kind == "bcast":
            chan = smi.open_bcast_channel(n, SMI_FLOAT, 0, 0)
            for i in range(n):
                yield from chan.bcast(float(i) if smi.rank == 0 else None)
        else:
            chan = smi.open_reduce_channel(n, SMI_FLOAT, SMI_ADD, 0, 0)
            for i in range(n):
                yield from chan.reduce(float(i))
        marks[smi.rank] = smi.cycle

    op = (OpDecl(kind, 0, SMI_FLOAT, scheme=scheme) if kind == "bcast"
          else OpDecl(kind, 0, SMI_FLOAT, reduce_op=SMI_ADD, scheme=scheme))
    prog.add_kernel(kernel, ranks="all", ops=[op])
    res = prog.run()
    assert res.completed
    return max(marks.values())


def main() -> None:
    b_eager = bystander_completion_cycles(credited=False)
    b_credited = bystander_completion_cycles(credited=True)
    print("credit-based p2p flow control (stalled co-stream, shared link):")
    print(f"  bystander finishes at {b_eager:,} cycles under eager, "
          f"{b_credited:,} under credits "
          f"({b_eager / b_credited:.0f}x earlier)")

    print("\nlinear vs tree collectives (8 ranks, 2x4 torus):")
    for kind, n in (("bcast", 8), ("reduce", 256)):
        lin = collective_cycles(kind, "linear", n)
        tree = collective_cycles(kind, "tree", n)
        print(f"  {kind:6s} n={n:<5d}: linear {NOCTUA.cycles_to_us(lin):8.2f} us, "
              f"tree {NOCTUA.cycles_to_us(tree):8.2f} us "
              f"({lin / tree:.2f}x)")


if __name__ == "__main__":
    main()
