"""SPMD stencil with SMI halo exchange (§5.4.2, Fig. 14, Listing 3).

Runs the 4-point Jacobi stencil over a 2x4 rank grid on the paper's torus:
every rank executes the same kernel, computes its neighbours at runtime,
opens per-direction transient channels each timestep, exchanges halos and
updates its block. Verifies against sequential NumPy Jacobi, then prints
the Fig. 15 strong-scaling projection. Run with::

    python examples/stencil_halo.py
"""

import numpy as np

from repro.apps.stencil import (
    FIG15_POINTS,
    StencilModel,
    jacobi_reference,
    run_distributed_sim,
)
from repro.network.topology import noctua_torus

NX, NY = 40, 48
TIMESTEPS = 6


def main() -> None:
    rng = np.random.default_rng(11)
    grid = rng.normal(size=(NX, NY)).astype(np.float32)

    out, us = run_distributed_sim(grid, TIMESTEPS, (2, 4),
                                  topology=noctua_torus())
    ref = jacobi_reference(grid, TIMESTEPS)
    err = float(np.max(np.abs(out.astype(np.float64) - ref)))
    print(f"cycle simulation: {NX}x{NY} grid, {TIMESTEPS} timesteps over "
          f"8 ranks (2x4 torus)")
    print(f"  simulated time: {us:.1f} us, max error vs NumPy: {err:.2e}")
    assert err < 1e-4

    print("\nFig. 15 projection (flow model, 4096^2 grid, 32 iterations):")
    model = StencilModel()
    base = model.time_s(4096, 4096, 32, 1, 1, (1, 1))
    for p in FIG15_POINTS:
        t = model.time_s(4096, 4096, 32, p.banks, p.num_fpgas, p.rank_grid)
        overlapped = (
            model.communication_overlapped(4096, 4096, p.banks, p.rank_grid)
            if p.num_fpgas > 1 else True
        )
        print(f"  {p.label:16s}: {t*1e3:7.1f} ms  speedup {base/t:5.2f}x  "
              f"comm overlapped: {overlapped}")


if __name__ == "__main__":
    main()
