"""GESUMMV: functional decomposition across two FPGAs (§5.4.1, Fig. 12).

Computes y = alpha*A@x + beta*B@x twice: on a single simulated FPGA (both
GEMV kernels share one board's memory bandwidth) and distributed over two
FPGAs (rank 0's GEMV streams its result through an SMI channel into rank
1's AXPY). Verifies numerics against NumPy and reports the measured
speedup, then prints the Fig. 13 paper-scale projection from the flow
model. Run with::

    python examples/gesummv_pipeline.py
"""

import numpy as np

from repro.apps.blas import gesummv_reference
from repro.apps.gesummv import GesummvModel, run_distributed_sim, run_single_sim

N = 256
ALPHA, BETA = 1.5, -0.5


def main() -> None:
    rng = np.random.default_rng(7)
    A = rng.normal(size=(N, N)).astype(np.float32)
    B = rng.normal(size=(N, N)).astype(np.float32)
    x = rng.normal(size=N).astype(np.float32)
    ref = gesummv_reference(ALPHA, BETA, A, B, x)

    y_single, t_single = run_single_sim(ALPHA, BETA, A, B, x)
    y_dist, t_dist = run_distributed_sim(ALPHA, BETA, A, B, x)

    err_single = float(np.max(np.abs(y_single - ref)))
    err_dist = float(np.max(np.abs(y_dist - ref)))
    print(f"cycle simulation, N={N}:")
    print(f"  single FPGA : {t_single:8.1f} us  (max err {err_single:.2e})")
    print(f"  distributed : {t_dist:8.1f} us  (max err {err_dist:.2e})")
    print(f"  speedup     : {t_single / t_dist:.2f}x")
    assert err_single < 1e-3 and err_dist < 1e-3

    print("\nFig. 13 projection (flow model, paper-scale sizes):")
    model = GesummvModel()
    for n in (2048, 4096, 8192, 16384):
        t = model.distributed_time_s(n, n) * 1e3
        print(f"  {n:5d} x {n:<5d}: distributed {t:7.2f} ms, "
              f"speedup {model.speedup(n, n):.2f}x")


if __name__ == "__main__":
    main()
