"""Collectives tour: Bcast (Listing 2), Reduce, Scatter and Gather on the
paper's 8-FPGA 2x4 torus (§3.2, §4.4).

Each collective runs as an SPMD program — the same kernel on every rank,
one bitstream — with the root chosen at runtime. Run with::

    python examples/collectives_tour.py
"""

import numpy as np

from repro import SMI_ADD, SMI_FLOAT, SMI_INT, SMIProgram, noctua_torus

N = 64
RANKS = 8


def demo_bcast(root: int) -> None:
    prog = SMIProgram(noctua_torus())

    @prog.kernel(ranks="all")
    def app(smi):
        # Listing 2: SPMD broadcast — the root streams locally produced
        # elements, everyone else receives them.
        chan = smi.open_bcast_channel(N, SMI_FLOAT, port=0, root=root)
        out = []
        for i in range(N):
            value = float(i) * 0.5 if smi.rank == root else None
            data = yield from chan.bcast(value)
            out.append(float(data))
        smi.store("data", out)

    res = prog.run()
    expect = [i * 0.5 for i in range(N)]
    assert all(res.store(r, "data") == expect for r in range(RANKS))
    print(f"Bcast from root {root}: all {RANKS} ranks received "
          f"{N} elements in {res.elapsed_us:.1f} us")


def demo_reduce(root: int) -> None:
    prog = SMIProgram(noctua_torus())

    @prog.kernel(ranks="all")
    def app(smi):
        chan = smi.open_reduce_channel(N, SMI_FLOAT, SMI_ADD, port=0, root=root)
        out = []
        for i in range(N):
            contribution = float(smi.rank + i)
            reduced = yield from chan.reduce(contribution)
            if smi.rank == root:
                out.append(float(reduced))
        if smi.rank == root:
            smi.store("sums", out)

    res = prog.run()
    expect = [sum(r + i for r in range(RANKS)) for i in range(N)]
    assert res.store(root, "sums") == expect
    print(f"Reduce(SUM) to root {root}: {N} elements combined from "
          f"{RANKS} ranks in {res.elapsed_us:.1f} us")


def demo_scatter_gather(root: int) -> None:
    prog = SMIProgram(noctua_torus())

    @prog.kernel(ranks="all")
    def app(smi):
        sc = smi.open_scatter_channel(N, SMI_INT, port=0, root=root)
        if smi.rank == root:
            # The root feeds all P*N elements while draining its own
            # segment (stream_root interleaves the two streams).
            mine = yield from sc.stream_root(list(range(RANKS * N)))
        else:
            mine = []
            for _ in range(N):
                v = yield from sc.pop()
                mine.append(int(v))
        # Round-trip: gather the scattered segments back, doubled.
        ga = smi.open_gather_channel(N, SMI_INT, port=1, root=root)
        doubled = [int(v) * 2 for v in mine]
        if smi.rank == root:
            back = yield from ga.collect_root(doubled)
            smi.store("gathered", [int(v) for v in back])
        else:
            for v in doubled:
                yield from ga.push(v)

    res = prog.run()
    gathered = res.store(root, "gathered")
    assert gathered == [2 * k for k in range(RANKS * N)]
    print(f"Scatter+Gather round trip via root {root}: "
          f"{RANKS * N} elements in {res.elapsed_us:.1f} us")


def main() -> None:
    demo_bcast(root=0)
    demo_bcast(root=5)    # dynamic root: same bitstream (§4.4)
    demo_reduce(root=0)
    demo_reduce(root=3)
    demo_scatter_gather(root=0)
    print("all collectives verified on the 2x4 torus")


if __name__ == "__main__":
    main()
