"""The development workflow of Fig. 8: topology -> routes -> program.

Demonstrates that routing adapts *without rebuilding the bitstream*
(§4.3/§5.3.1): the same SMI program runs over the 2x4 torus and over a
degraded linear-bus wiring of the same 8 FPGAs — only the topology
description and the generated routing tables change. Run with::

    python examples/routing_workflow.py
"""

import tempfile
from pathlib import Path

from repro import SMI_INT, SMIProgram, noctua_bus, noctua_torus
from repro.codegen import generate, generate_routes
from repro.codegen.metadata import OpDecl
from repro.network.routing import compute_routes, is_deadlock_free

N = 32
SRC, DST = 0, 6


def run_program(topology):
    """The 'bitstream': a fixed two-kernel stream program."""
    prog = SMIProgram(topology)

    def sender(smi):
        ch = smi.open_send_channel(N, SMI_INT, DST, 0)
        for i in range(N):
            yield from smi.push(ch, i)

    def receiver(smi):
        ch = smi.open_recv_channel(N, SMI_INT, SRC, 0)
        out = []
        for _ in range(N):
            v = yield from smi.pop(ch)
            out.append(int(v))
        smi.store("out", out)

    prog.add_kernel(sender, rank=SRC, ops=[OpDecl("send", 0, SMI_INT)])
    prog.add_kernel(receiver, rank=DST, ops=[OpDecl("recv", 0, SMI_INT)])
    return prog.run()


def main() -> None:
    for topology in (noctua_torus(), noctua_bus()):
        # 1. Describe the interconnect (JSON, Fig. 8 'Topology' input).
        with tempfile.TemporaryDirectory() as tmp:
            top_file = Path(tmp) / "topology.json"
            topology.to_json(top_file)

            # 2. Generate routing tables (the smi-routes tool).
            routes = generate_routes(topology, Path(tmp) / "routes")

            # 3. Run the *unchanged* program over the new wiring.
            result = run_program(topology)
            assert result.store(DST, "out") == list(range(N))

        path = routes.path(SRC, DST)
        print(f"{topology.name:9s}: scheme={routes.scheme:8s} "
              f"deadlock-free={is_deadlock_free(routes)!s:5s} "
              f"route {SRC}->{DST}: {path} ({len(path)-1} hops), "
              f"message delivered in {result.elapsed_us:.2f} us")

    # 4. The code generator's hardware inventory for this program.
    from repro.codegen.metadata import ProgramPlan

    plan = ProgramPlan(8)
    plan.add(SRC, OpDecl("send", 0, SMI_INT))
    plan.add(DST, OpDecl("recv", 0, SMI_INT))
    from repro.core.config import NOCTUA

    report = generate(plan, noctua_torus(), NOCTUA)
    rank0 = report.ranks[SRC]
    print(f"\ncode generator output for rank {SRC}: "
          f"{len(rank0.cks_modules)} CKS + {len(rank0.ckr_modules)} CKR "
          f"modules, endpoints {sorted(rank0.send_endpoints)}, "
          f"~{rank0.resources.total.luts:,} LUTs")


if __name__ == "__main__":
    main()
